package dz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGeometry(t *testing.T, dims, bits int) Geometry {
	t.Helper()
	g, err := NewGeometry(dims, bits)
	if err != nil {
		t.Fatalf("NewGeometry(%d,%d): %v", dims, bits, err)
	}
	return g
}

func TestNewGeometry(t *testing.T) {
	if _, err := NewGeometry(0, 10); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewGeometry(2, 0); err == nil {
		t.Error("bits=0 must fail")
	}
	if _, err := NewGeometry(2, 31); err == nil {
		t.Error("bits=31 must fail")
	}
	g := mustGeometry(t, 2, 10)
	if g.MaxLen() != 20 {
		t.Errorf("MaxLen=%d, want 20", g.MaxLen())
	}
	if g.DomainSize() != 1024 {
		t.Errorf("DomainSize=%d, want 1024", g.DomainSize())
	}
}

// TestPaperFigure2 reproduces the decomposition from Figure 2 of the paper:
// two attributes A and B with domain [0,100] (we scale to [0,1023]); the
// advertisement Adv = {A ∈ [50,75], B ∈ [0,100]} decomposes to DZ =
// {110, 100} at dz-length 3.
func TestPaperFigure2(t *testing.T) {
	g := mustGeometry(t, 2, 10)
	// A = [512, 767] is exactly the third quarter of the A axis (paper's
	// [50,75] of [0,100]); B covers the full domain.
	adv := Rect{
		{Lo: 512, Hi: 767}, // dimension A (first bisection dimension)
		{Lo: 0, Hi: 1023},  // dimension B
	}
	got, err := g.Decompose(adv, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSet("110", "100")
	if !got.Equal(want) {
		t.Fatalf("Decompose=%v, want %v", got, want)
	}
}

func TestBounds(t *testing.T) {
	g := mustGeometry(t, 2, 2) // domain [0,3] per dim
	tests := []struct {
		e    Expr
		want Rect
	}{
		{Whole, Rect{{0, 3}, {0, 3}}},
		{"0", Rect{{0, 1}, {0, 3}}},
		{"1", Rect{{2, 3}, {0, 3}}},
		{"10", Rect{{2, 3}, {0, 1}}},
		{"1011", Rect{{3, 3}, {1, 1}}},
		{"101100", Rect{{3, 3}, {1, 1}}}, // beyond MaxLen: same as MaxLen
	}
	for _, tt := range tests {
		got := g.Bounds(tt.e)
		if len(got) != len(tt.want) {
			t.Fatalf("Bounds(%q) len=%d", tt.e, len(got))
		}
		for d := range got {
			if got[d] != tt.want[d] {
				t.Errorf("Bounds(%q)[%d]=%v, want %v", tt.e, d, got[d], tt.want[d])
			}
		}
	}
}

func TestEncodePoint(t *testing.T) {
	g := mustGeometry(t, 2, 2)
	tests := []struct {
		point  []uint32
		length int
		want   Expr
	}{
		{[]uint32{0, 0}, 4, "0000"},
		{[]uint32{3, 3}, 4, "1111"},
		{[]uint32{2, 1}, 4, "1001"},
		{[]uint32{2, 1}, 2, "10"},
		{[]uint32{2, 1}, 0, Whole},
		{[]uint32{2, 1}, 99, "1001"}, // clamped to MaxLen
		{[]uint32{9, 9}, 4, "1111"},  // out-of-domain clamped
	}
	for _, tt := range tests {
		got, err := g.EncodePoint(tt.point, tt.length)
		if err != nil {
			t.Fatalf("EncodePoint(%v,%d): %v", tt.point, tt.length, err)
		}
		if got != tt.want {
			t.Errorf("EncodePoint(%v,%d)=%q, want %q", tt.point, tt.length, got, tt.want)
		}
	}
	if _, err := g.EncodePoint([]uint32{1}, 4); err == nil {
		t.Error("dimension mismatch must fail")
	}
	if _, err := g.EncodePoint([]uint32{1, 1}, -1); err == nil {
		t.Error("negative length must fail")
	}
}

func TestDecomposeValidation(t *testing.T) {
	g := mustGeometry(t, 2, 4)
	if _, err := g.Decompose(Rect{{0, 1}}, 4); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := g.Decompose(Rect{{3, 1}, {0, 1}}, 4); err == nil {
		t.Error("empty interval must fail")
	}
	if _, err := g.Decompose(Rect{{0, 99}, {0, 1}}, 4); err == nil {
		t.Error("out-of-domain must fail")
	}
}

func TestDecomposeWholeSpace(t *testing.T) {
	g := mustGeometry(t, 3, 4)
	got, err := g.Decompose(g.FullRect(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsWhole() {
		t.Errorf("full rect must decompose to whole space, got %v", got)
	}
}

func TestDecomposeEnclosing(t *testing.T) {
	// Property: the decomposition encloses the rectangle — every point in
	// the rectangle is contained in some member subspace.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Geometry{Dims: 1 + r.Intn(3), BitsPerDim: 3 + r.Intn(3)}
		rect := make(Rect, g.Dims)
		for d := range rect {
			a := uint32(r.Intn(int(g.DomainSize())))
			b := uint32(r.Intn(int(g.DomainSize())))
			if a > b {
				a, b = b, a
			}
			rect[d] = Interval{Lo: a, Hi: b}
		}
		maxLen := r.Intn(g.MaxLen() + 1)
		set, err := g.Decompose(rect, maxLen)
		if err != nil {
			return false
		}
		// Sample random points inside the rectangle.
		for i := 0; i < 30; i++ {
			p := make([]uint32, g.Dims)
			for d := range p {
				span := rect[d].Hi - rect[d].Lo + 1
				p[d] = rect[d].Lo + uint32(r.Intn(int(span)))
			}
			e, err := g.EncodePoint(p, g.MaxLen())
			if err != nil {
				return false
			}
			if !set.Contains(e.Truncate(maxLenContains(set, e))) && !set.Overlaps(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// maxLenContains is a helper for the enclosing property: set membership is
// judged via overlap, so the truncation level does not matter; we just keep
// the original length.
func maxLenContains(_ Set, e Expr) int { return e.Len() }

func TestDecomposeExactAtFullDepth(t *testing.T) {
	// Property: at maxLen == MaxLen, decomposition is exact — points outside
	// the rectangle are NOT covered by the decomposition.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Geometry{Dims: 1 + r.Intn(2), BitsPerDim: 3}
		rect := make(Rect, g.Dims)
		for d := range rect {
			a := uint32(r.Intn(int(g.DomainSize())))
			b := uint32(r.Intn(int(g.DomainSize())))
			if a > b {
				a, b = b, a
			}
			rect[d] = Interval{Lo: a, Hi: b}
		}
		set, err := g.Decompose(rect, g.MaxLen())
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			p := make([]uint32, g.Dims)
			for d := range p {
				p[d] = uint32(r.Intn(int(g.DomainSize())))
			}
			e, err := g.EncodePoint(p, g.MaxLen())
			if err != nil {
				return false
			}
			inRect := RectContainsPoint(rect, p)
			inSet := set.Contains(e)
			if inRect != inSet {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBoundsRoundTrip(t *testing.T) {
	// Property: a point encoded at length L lies within Bounds(expr).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Geometry{Dims: 1 + r.Intn(4), BitsPerDim: 2 + r.Intn(5)}
		p := make([]uint32, g.Dims)
		for d := range p {
			p[d] = uint32(r.Intn(int(g.DomainSize())))
		}
		length := r.Intn(g.MaxLen() + 1)
		e, err := g.EncodePoint(p, length)
		if err != nil {
			return false
		}
		if e.Len() != length {
			return false
		}
		return g.ContainsPoint(e, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectHelpers(t *testing.T) {
	a := Rect{{0, 5}, {2, 4}}
	b := Rect{{5, 9}, {0, 2}}
	c := Rect{{6, 9}, {0, 2}}
	if !RectOverlaps(a, b) {
		t.Error("a and b must overlap (corner touch)")
	}
	if RectOverlaps(a, c) {
		t.Error("a and c must not overlap")
	}
	if !RectContainsPoint(a, []uint32{3, 3}) {
		t.Error("point must be inside")
	}
	if RectContainsPoint(a, []uint32{3, 5}) {
		t.Error("point must be outside")
	}
	iv := Interval{Lo: 2, Hi: 6}
	if !iv.ContainsInterval(Interval{Lo: 3, Hi: 6}) {
		t.Error("ContainsInterval failed")
	}
	if iv.ContainsInterval(Interval{Lo: 1, Hi: 4}) {
		t.Error("ContainsInterval false positive")
	}
}

func BenchmarkDecompose(b *testing.B) {
	g := Geometry{Dims: 4, BitsPerDim: 10}
	rect := Rect{{100, 600}, {0, 1023}, {300, 400}, {512, 1000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Decompose(rect, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePoint(b *testing.B) {
	g := Geometry{Dims: 8, BitsPerDim: 10}
	p := []uint32{1, 1000, 512, 77, 3, 900, 255, 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.EncodePoint(p, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecomposeLimitedRespectsBudget(t *testing.T) {
	g := Geometry{Dims: 5, BitsPerDim: 10}
	rect := Rect{
		{100, 600}, {0, 1023}, {300, 800}, {512, 1000}, {5, 900},
	}
	for _, budget := range []int{1, 4, 16, 64} {
		set, err := g.DecomposeLimited(rect, 25, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) > budget {
			t.Errorf("budget %d: got %d subspaces", budget, len(set))
		}
		if set.IsEmpty() {
			t.Errorf("budget %d: empty set", budget)
		}
	}
	if _, err := g.DecomposeLimited(rect, 25, 0); err == nil {
		t.Error("zero budget must fail")
	}
	if _, err := g.DecomposeLimited(Rect{{0, 1}}, 25, 4); err == nil {
		t.Error("wrong dims must fail")
	}
}

func TestDecomposeLimitedEnclosing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Geometry{Dims: 1 + r.Intn(4), BitsPerDim: 4}
		rect := make(Rect, g.Dims)
		for d := range rect {
			a := uint32(r.Intn(int(g.DomainSize())))
			b := uint32(r.Intn(int(g.DomainSize())))
			if a > b {
				a, b = b, a
			}
			rect[d] = Interval{Lo: a, Hi: b}
		}
		budget := 1 + r.Intn(32)
		maxLen := r.Intn(g.MaxLen() + 1)
		set, err := g.DecomposeLimited(rect, maxLen, budget)
		if err != nil || len(set) > budget {
			return false
		}
		for i := 0; i < 30; i++ {
			p := make([]uint32, g.Dims)
			for d := range p {
				span := rect[d].Hi - rect[d].Lo + 1
				p[d] = rect[d].Lo + uint32(r.Intn(int(span)))
			}
			e, err := g.EncodePoint(p, g.MaxLen())
			if err != nil {
				return false
			}
			if !set.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeLimitedMatchesUnlimitedWhenSmall(t *testing.T) {
	g := Geometry{Dims: 2, BitsPerDim: 10}
	rect := Rect{{512, 767}, {0, 1023}}
	limited, err := g.DecomposeLimited(rect, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.Decompose(rect, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !limited.Equal(exact) {
		t.Errorf("limited=%v, exact=%v", limited, exact)
	}
}
