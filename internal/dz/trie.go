package dz

import "math/bits"

// MaxKeyBits is the number of dz bits a packed trie Key can hold. It equals
// the dz capacity of the IPv6 embedding (128 address bits minus the 16-bit
// ff0e base prefix), so every expression that can exist as a flow-table
// match — and every event destination address — packs losslessly.
const MaxKeyBits = 112

// Key is a dz-expression packed into raw bits: the value form the prefix
// index operates on. Packing happens once per expression (KeyOf) or once
// per packet (the ipmc address converter); all trie traversal below works
// on machine words instead of per-character string compares, and a Key is a
// plain value — building one never allocates.
//
// Bits beyond the length are always zero, so == is a valid equality test.
type Key struct {
	len  uint8
	bits [14]byte
}

// KeyOf packs an expression into a Key. ok is false when the expression
// exceeds MaxKeyBits; the returned Key is then the truncated prefix, which
// callers must not treat as equivalent to the full expression.
func KeyOf(e Expr) (k Key, ok bool) {
	n := len(e)
	ok = n <= MaxKeyBits
	if !ok {
		n = MaxKeyBits
	}
	k.len = uint8(n)
	for i := 0; i < n; i++ {
		if e[i] == '1' {
			k.bits[i>>3] |= 1 << uint(7-i&7)
		}
	}
	return k, ok
}

// KeyFromBits builds a Key from pre-packed big-endian bits (bit 0 is the
// MSB of b[0]). n is clamped to [0, MaxKeyBits]; bits beyond n are cleared
// so the result is normalised. It never allocates.
func KeyFromBits(b [14]byte, n int) Key {
	if n < 0 {
		n = 0
	}
	if n > MaxKeyBits {
		n = MaxKeyBits
	}
	k := Key{len: uint8(n), bits: b}
	// Zero the tail: partial last byte, then whole bytes.
	if r := n & 7; r != 0 {
		k.bits[n>>3] &= ^byte(0) << uint(8-r)
		n += 8 - r
	}
	for i := n >> 3; i < len(k.bits); i++ {
		k.bits[i] = 0
	}
	return k
}

// Len returns the number of dz bits in the key.
func (k Key) Len() int { return int(k.len) }

// Bit returns the i-th bit (0 or 1). i must be < Len().
func (k Key) Bit(i int) byte {
	return (k.bits[i>>3] >> uint(7-i&7)) & 1
}

// Prefix returns the key truncated to at most n bits.
func (k Key) Prefix(n int) Key {
	if n >= int(k.len) {
		return k
	}
	return KeyFromBits(k.bits, n)
}

// Expr unpacks the key back into a string expression (allocates; meant for
// walks and diagnostics, never for the packet path).
func (k Key) Expr() Expr {
	if k.len == 0 {
		return Whole
	}
	buf := make([]byte, k.len)
	for i := range buf {
		buf[i] = '0' + k.Bit(i)
	}
	return Expr(buf)
}

// commonPrefixLen returns the length of the longest common prefix of two
// keys, comparing byte-at-a-time with a leading-zeros count on the first
// mismatch.
func commonPrefixLen(a, b Key) int {
	n := int(a.len)
	if int(b.len) < n {
		n = int(b.len)
	}
	full := n >> 3
	for i := 0; i < full; i++ {
		if x := a.bits[i] ^ b.bits[i]; x != 0 {
			return i<<3 + bits.LeadingZeros8(x)
		}
	}
	if p := full << 3; p < n {
		if x := a.bits[full] ^ b.bits[full]; x != 0 {
			if cpl := p + bits.LeadingZeros8(x); cpl < n {
				return cpl
			}
		}
	}
	return n
}

// Trie is a path-compressed binary trie over packed dz keys — the single
// prefix-index engine of the repo. The flow-table fast path, the
// controller's owning-tree index, and the interdomain covering index all
// consume it.
//
// Every node stores its absolute prefix, so descending compares one
// commonPrefixLen per node (word-wise) and lookups are O(|dz|) with zero
// allocations. The zero value is an empty trie ready for use. A Trie is not
// safe for concurrent mutation; all consumers guard it with their own
// locks.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	key    Key // absolute prefix from the root
	child  [2]*trieNode[V]
	hasVal bool
	val    V
}

// Len returns the number of stored entries.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores v under k, replacing any existing value. It reports
// whether the key was newly inserted.
func (t *Trie[V]) Insert(k Key, v V) bool {
	slot := &t.root
	for {
		n := *slot
		if n == nil {
			*slot = &trieNode[V]{key: k, hasVal: true, val: v}
			t.size++
			return true
		}
		cpl := commonPrefixLen(k, n.key)
		if cpl == int(n.key.len) {
			if cpl == int(k.len) {
				// Exact node: replace or set.
				n.val = v
				if !n.hasVal {
					n.hasVal = true
					t.size++
					return true
				}
				return false
			}
			slot = &n.child[k.Bit(cpl)]
			continue
		}
		// Diverged inside n's compressed path: split at cpl.
		mid := &trieNode[V]{key: k.Prefix(cpl)}
		mid.child[n.key.Bit(cpl)] = n
		if cpl == int(k.len) {
			mid.hasVal = true
			mid.val = v
		} else {
			mid.child[k.Bit(cpl)] = &trieNode[V]{key: k, hasVal: true, val: v}
		}
		*slot = mid
		t.size++
		return true
	}
}

// Get returns the value stored under exactly k.
func (t *Trie[V]) Get(k Key) (V, bool) {
	n := t.root
	for n != nil {
		cpl := commonPrefixLen(k, n.key)
		if cpl < int(n.key.len) {
			break
		}
		if cpl == int(k.len) {
			if n.hasVal {
				return n.val, true
			}
			break
		}
		n = n.child[k.Bit(cpl)]
	}
	var zero V
	return zero, false
}

// Delete removes the entry stored under exactly k, re-compressing the path
// behind it. It reports whether an entry was removed.
func (t *Trie[V]) Delete(k Key) bool {
	slot := &t.root
	var parent **trieNode[V]
	for {
		n := *slot
		if n == nil {
			return false
		}
		cpl := commonPrefixLen(k, n.key)
		if cpl < int(n.key.len) {
			return false
		}
		if cpl == int(k.len) {
			if !n.hasVal {
				return false
			}
			n.hasVal = false
			var zero V
			n.val = zero
			t.size--
			t.contract(slot)
			if parent != nil {
				t.contract(parent)
			}
			return true
		}
		parent = slot
		slot = &n.child[k.Bit(cpl)]
	}
}

// contract removes a valueless node with fewer than two children from the
// path, splicing its only child (if any) into its place.
func (t *Trie[V]) contract(slot **trieNode[V]) {
	n := *slot
	if n == nil || n.hasVal {
		return
	}
	switch {
	case n.child[0] != nil && n.child[1] != nil:
		return // still a branch point
	case n.child[0] != nil:
		*slot = n.child[0]
	case n.child[1] != nil:
		*slot = n.child[1]
	default:
		*slot = nil
	}
}

// LongestPrefix returns the entry with the longest key that is a prefix of
// k (the longest-prefix match of the packet path). It never allocates.
func (t *Trie[V]) LongestPrefix(k Key) (Key, V, bool) {
	var bestK Key
	var bestV V
	found := false
	n := t.root
	for n != nil {
		cpl := commonPrefixLen(k, n.key)
		if cpl < int(n.key.len) {
			break // n's path diverges from k: nothing below is a prefix
		}
		if n.hasVal {
			bestK, bestV, found = n.key, n.val, true
		}
		if cpl == int(k.len) {
			break
		}
		n = n.child[k.Bit(cpl)]
	}
	return bestK, bestV, found
}

// CoversAny reports whether any stored key is a prefix of k, i.e. whether
// the indexed region covers the subspace of k. It never allocates.
func (t *Trie[V]) CoversAny(k Key) bool {
	n := t.root
	for n != nil {
		cpl := commonPrefixLen(k, n.key)
		if cpl < int(n.key.len) {
			return false
		}
		if n.hasVal {
			return true
		}
		if cpl == int(k.len) {
			return false
		}
		n = n.child[k.Bit(cpl)]
	}
	return false
}

// VisitPrefixes calls fn for every stored entry whose key is a prefix of k
// (coarsest first). fn returning false stops the walk.
func (t *Trie[V]) VisitPrefixes(k Key, fn func(Key, V) bool) {
	n := t.root
	for n != nil {
		cpl := commonPrefixLen(k, n.key)
		if cpl < int(n.key.len) {
			return
		}
		if n.hasVal && !fn(n.key, n.val) {
			return
		}
		if cpl == int(k.len) {
			return
		}
		n = n.child[k.Bit(cpl)]
	}
}

// WalkCovered calls fn for every stored entry whose key k covers (k is a
// prefix of the stored key, including k itself), in lexicographic order.
// fn returning false stops the walk.
func (t *Trie[V]) WalkCovered(k Key, fn func(Key, V) bool) {
	n := t.root
	for n != nil {
		cpl := commonPrefixLen(k, n.key)
		if cpl == int(k.len) {
			// k is a prefix of n's path: the whole subtree is covered.
			n.walk(fn)
			return
		}
		if cpl < int(n.key.len) {
			return // diverged before exhausting k: nothing covered here
		}
		n = n.child[k.Bit(cpl)]
	}
}

// Walk calls fn for every stored entry in lexicographic key order
// (prefixes before their extensions). fn returning false stops the walk.
func (t *Trie[V]) Walk(fn func(Key, V) bool) {
	t.root.walk(fn)
}

func (n *trieNode[V]) walk(fn func(Key, V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasVal && !fn(n.key, n.val) {
		return false
	}
	return n.child[0].walk(fn) && n.child[1].walk(fn)
}
