package dz

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSizes are the working-set sizes the set-algebra micro-benchmarks
// sweep; future PRs diff these with benchstat (see `make bench`).
var benchSizes = []int{10, 100, 1000}

// randomExprs generates n random expressions with lengths in
// [minLen, minLen+spread]. The benchmarks keep minLen well above log2(n) so
// canonicalisation does not collapse the whole working set into a handful
// of coarse subspaces (which would benchmark the empty case).
func randomExprs(n, minLen, spread int, seed int64) []Expr {
	r := rand.New(rand.NewSource(seed))
	out := make([]Expr, n)
	for i := range out {
		l := minLen + r.Intn(spread+1)
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = byte('0' + r.Intn(2))
		}
		out[i] = Expr(buf)
	}
	return out
}

func BenchmarkSetCanonical(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			raw := Set(randomExprs(n, 18, 6, 42))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = raw.Canonical()
			}
		})
	}
}

func BenchmarkSetSubtract(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSet(randomExprs(n, 18, 6, 1)...)
			o := NewSet(randomExprs(n, 14, 4, 2)...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Subtract(o)
			}
		})
	}
}

func BenchmarkSetUnion(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSet(randomExprs(n, 18, 6, 3)...)
			o := NewSet(randomExprs(n, 18, 6, 4)...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Union(o)
			}
		})
	}
}

// refineSet derives a set overlapping s: every member gets 0–3 extra
// random bits, so intersections and coverage checks do real work instead of
// bailing out on disjoint operands.
func refineSet(s Set, seed int64) Set {
	r := rand.New(rand.NewSource(seed))
	out := make([]Expr, 0, len(s))
	for _, e := range s {
		for k := r.Intn(4); k > 0; k-- {
			e = e.Child(byte(r.Intn(2)))
		}
		out = append(out, e)
	}
	return NewSet(out...)
}

func BenchmarkSetIntersectSized(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSet(randomExprs(n, 18, 6, 5)...)
			o := refineSet(s, 6)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Intersect(o)
			}
		})
	}
}

func BenchmarkSetCovers(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSet(randomExprs(n, 14, 4, 7)...)
			o := refineSet(s, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Covers(o)
			}
		})
	}
}
