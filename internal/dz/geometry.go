package dz

import "fmt"

// Geometry binds the dz algebra to a concrete event space: a k-dimensional
// integer hypercube in which every dimension has the domain [0, 2^BitsPerDim).
// Bisections cycle through the dimensions: bit i of a dz-expression refines
// dimension i mod Dims. A dz-expression of length Dims*BitsPerDim identifies
// a single point.
type Geometry struct {
	// Dims is the number of dimensions of the event space (the selected
	// attributes, |Ω_D| in the paper).
	Dims int
	// BitsPerDim is the number of bisections available per dimension; the
	// domain of each dimension is [0, 2^BitsPerDim).
	BitsPerDim int
}

// NewGeometry validates and constructs a Geometry.
func NewGeometry(dims, bitsPerDim int) (Geometry, error) {
	if dims <= 0 {
		return Geometry{}, fmt.Errorf("dz: dims must be positive, got %d", dims)
	}
	if bitsPerDim <= 0 || bitsPerDim > 30 {
		return Geometry{}, fmt.Errorf("dz: bitsPerDim must be in [1,30], got %d", bitsPerDim)
	}
	return Geometry{Dims: dims, BitsPerDim: bitsPerDim}, nil
}

// MaxLen returns the maximum meaningful dz length for this geometry.
func (g Geometry) MaxLen() int { return g.Dims * g.BitsPerDim }

// DomainSize returns the number of values per dimension (2^BitsPerDim).
func (g Geometry) DomainSize() uint32 { return 1 << uint(g.BitsPerDim) }

// Interval is a closed integer interval [Lo, Hi].
type Interval struct {
	Lo, Hi uint32
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint32) bool { return iv.Lo <= v && v <= iv.Hi }

// Intersects reports whether two intervals overlap.
func (iv Interval) Intersects(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// ContainsInterval reports whether o is fully inside iv.
func (iv Interval) ContainsInterval(o Interval) bool { return iv.Lo <= o.Lo && o.Hi <= iv.Hi }

// Rect is an axis-aligned hyperrectangle: one closed interval per dimension.
// It is the geometric form of a content-based subscription or advertisement.
type Rect []Interval

// FullRect returns the rectangle covering the whole event space.
func (g Geometry) FullRect() Rect {
	r := make(Rect, g.Dims)
	for d := range r {
		r[d] = Interval{Lo: 0, Hi: g.DomainSize() - 1}
	}
	return r
}

// Validate checks that the rectangle matches the geometry.
func (g Geometry) Validate(r Rect) error {
	if len(r) != g.Dims {
		return fmt.Errorf("dz: rect has %d dims, geometry has %d", len(r), g.Dims)
	}
	for d, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("dz: rect dim %d has empty interval [%d,%d]", d, iv.Lo, iv.Hi)
		}
		if iv.Hi >= g.DomainSize() {
			return fmt.Errorf("dz: rect dim %d exceeds domain: hi=%d, domain=[0,%d]",
				d, iv.Hi, g.DomainSize()-1)
		}
	}
	return nil
}

// Bounds returns the hyperrectangle identified by the dz-expression. An
// expression longer than MaxLen identifies the same region as its MaxLen
// truncation.
func (g Geometry) Bounds(e Expr) Rect {
	r := g.FullRect()
	n := e.Len()
	if n > g.MaxLen() {
		n = g.MaxLen()
	}
	for i := 0; i < n; i++ {
		d := i % g.Dims
		mid := r[d].Lo + (r[d].Hi-r[d].Lo)/2
		if e[i] == '0' {
			r[d].Hi = mid
		} else {
			r[d].Lo = mid + 1
		}
	}
	return r
}

// EncodePoint returns the dz-expression of the given length that encloses
// the point. Coordinates outside the domain are clamped.
func (g Geometry) EncodePoint(point []uint32, length int) (Expr, error) {
	if len(point) != g.Dims {
		return "", fmt.Errorf("dz: point has %d dims, geometry has %d", len(point), g.Dims)
	}
	if length < 0 {
		return "", fmt.Errorf("dz: negative dz length %d", length)
	}
	if length > g.MaxLen() {
		length = g.MaxLen()
	}
	buf := make([]byte, length)
	lo := make([]uint32, g.Dims)
	hi := make([]uint32, g.Dims)
	for d := range hi {
		hi[d] = g.DomainSize() - 1
	}
	for i := 0; i < length; i++ {
		d := i % g.Dims
		v := point[d]
		if v > g.DomainSize()-1 {
			v = g.DomainSize() - 1
		}
		mid := lo[d] + (hi[d]-lo[d])/2
		if v <= mid {
			buf[i] = '0'
			hi[d] = mid
		} else {
			buf[i] = '1'
			lo[d] = mid + 1
		}
	}
	return Expr(buf), nil
}

// ContainsPoint reports whether the subspace of e contains the point.
func (g Geometry) ContainsPoint(e Expr, point []uint32) bool {
	b := g.Bounds(e)
	for d, iv := range b {
		if !iv.Contains(point[d]) {
			return false
		}
	}
	return true
}

// Decompose converts a hyperrectangle into a canonical set of dz-expressions
// of length at most maxLen that together *enclose* the rectangle. Subspaces
// fully inside the rectangle are emitted as-is; subspaces that still
// straddle the rectangle boundary when maxLen is reached are emitted whole,
// making the result an enclosing over-approximation (the source of false
// positives studied in Section 6.4 of the paper).
func (g Geometry) Decompose(r Rect, maxLen int) (Set, error) {
	if err := g.Validate(r); err != nil {
		return nil, err
	}
	if maxLen < 0 {
		maxLen = 0
	}
	if maxLen > g.MaxLen() {
		maxLen = g.MaxLen()
	}
	var out []Expr
	g.decompose(r, Whole, g.FullRect(), maxLen, &out)
	return NewSet(out...), nil
}

func (g Geometry) decompose(target Rect, e Expr, bounds Rect, maxLen int, out *[]Expr) {
	contained := true
	for d := range bounds {
		if !bounds[d].Intersects(target[d]) {
			return // disjoint: nothing of the target in this subspace
		}
		if !target[d].ContainsInterval(bounds[d]) {
			contained = false
		}
	}
	if contained || e.Len() >= maxLen {
		*out = append(*out, e)
		return
	}
	d := e.Len() % g.Dims
	mid := bounds[d].Lo + (bounds[d].Hi-bounds[d].Lo)/2
	lower := make(Rect, len(bounds))
	upper := make(Rect, len(bounds))
	copy(lower, bounds)
	copy(upper, bounds)
	lower[d].Hi = mid
	upper[d].Lo = mid + 1
	g.decompose(target, e.Child(0), lower, maxLen, out)
	g.decompose(target, e.Child(1), upper, maxLen, out)
}

// RectOverlaps reports whether two rectangles intersect.
func RectOverlaps(a, b Rect) bool {
	for d := range a {
		if !a[d].Intersects(b[d]) {
			return false
		}
	}
	return true
}

// RectContainsPoint reports whether the rectangle contains the point.
func RectContainsPoint(r Rect, point []uint32) bool {
	for d := range r {
		if !r[d].Contains(point[d]) {
			return false
		}
	}
	return true
}

// DecomposeLimited converts a hyperrectangle into an enclosing set of at
// most maxSubspaces dz-expressions of length at most maxLen. It refines
// the spatial index in level order and stops splitting once the subspace
// budget is exhausted, emitting still-straddling subspaces whole — a
// coarser over-approximation. Real deployments need such a cap because the
// exact decomposition of a wide rectangle in a high-dimensional space can
// contain millions of subspaces (the address-space pressure Section 5 of
// the paper addresses with dimension selection).
func (g Geometry) DecomposeLimited(r Rect, maxLen, maxSubspaces int) (Set, error) {
	if err := g.Validate(r); err != nil {
		return nil, err
	}
	if maxSubspaces < 1 {
		return nil, fmt.Errorf("dz: maxSubspaces must be positive, got %d", maxSubspaces)
	}
	if maxLen < 0 {
		maxLen = 0
	}
	if maxLen > g.MaxLen() {
		maxLen = g.MaxLen()
	}
	type node struct {
		e      Expr
		bounds Rect
	}
	var done []Expr // fully contained or budget-frozen subspaces
	queue := []node{{e: Whole, bounds: g.FullRect()}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		disjoint, contained := false, true
		for d := range n.bounds {
			if !n.bounds[d].Intersects(r[d]) {
				disjoint = true
				break
			}
			if !r[d].ContainsInterval(n.bounds[d]) {
				contained = false
			}
		}
		if disjoint {
			continue
		}
		if contained || n.e.Len() >= maxLen ||
			len(done)+len(queue)+2 > maxSubspaces {
			// +2: splitting this node could add one extra leaf overall.
			done = append(done, n.e)
			continue
		}
		d := n.e.Len() % g.Dims
		mid := n.bounds[d].Lo + (n.bounds[d].Hi-n.bounds[d].Lo)/2
		lower := make(Rect, len(n.bounds))
		upper := make(Rect, len(n.bounds))
		copy(lower, n.bounds)
		copy(upper, n.bounds)
		lower[d].Hi = mid
		upper[d].Lo = mid + 1
		queue = append(queue,
			node{e: n.e.Child(0), bounds: lower},
			node{e: n.e.Child(1), bounds: upper})
	}
	return NewSet(done...), nil
}
