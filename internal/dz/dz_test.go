package dz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExprValidate(t *testing.T) {
	tests := []struct {
		name    string
		expr    Expr
		wantErr bool
	}{
		{"empty", Whole, false},
		{"zeros", "000", false},
		{"mixed", "1011", false},
		{"letter", "10a1", true},
		{"space", "1 0", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.expr.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%q) err=%v, wantErr=%v", tt.expr, err, tt.wantErr)
			}
		})
	}
}

func TestExprCovers(t *testing.T) {
	tests := []struct {
		a, b          Expr
		covers        bool
		coversStrict  bool
		overlaps      bool
		overlapResult Expr
	}{
		{Whole, "101", true, true, true, "101"},
		{"101", Whole, false, false, true, "101"},
		{"1", "11", true, true, true, "11"},
		{"11", "1", false, false, true, "11"},
		{"10", "10", true, false, true, "10"},
		{"0", "1", false, false, false, ""},
		{"100", "101", false, false, false, ""},
		{"000", "0", false, false, true, "000"},
	}
	for _, tt := range tests {
		if got := tt.a.Covers(tt.b); got != tt.covers {
			t.Errorf("(%q).Covers(%q)=%v, want %v", tt.a, tt.b, got, tt.covers)
		}
		if got := tt.a.CoversStrictly(tt.b); got != tt.coversStrict {
			t.Errorf("(%q).CoversStrictly(%q)=%v, want %v", tt.a, tt.b, got, tt.coversStrict)
		}
		if got := tt.a.Overlaps(tt.b); got != tt.overlaps {
			t.Errorf("(%q).Overlaps(%q)=%v, want %v", tt.a, tt.b, got, tt.overlaps)
		}
		ov, ok := tt.a.Overlap(tt.b)
		if ok != tt.overlaps || (ok && ov != tt.overlapResult) {
			t.Errorf("(%q).Overlap(%q)=(%q,%v), want (%q,%v)",
				tt.a, tt.b, ov, ok, tt.overlapResult, tt.overlaps)
		}
	}
}

func TestExprSubtract(t *testing.T) {
	tests := []struct {
		a, b Expr
		want []Expr
	}{
		// Paper example: 0 − 000 = {001, 01}.
		{"0", "000", []Expr{"001", "01"}},
		{"0", "0", nil},
		{"0", "00", []Expr{"01"}},
		{"0", "1", []Expr{"0"}},
		{"00", "0", nil},
		{Whole, "1", []Expr{"0"}},
		{Whole, "10", []Expr{"11", "0"}},
	}
	for _, tt := range tests {
		got := tt.a.Subtract(tt.b)
		gotSet := NewSet(got...)
		wantSet := NewSet(tt.want...)
		if !gotSet.Equal(wantSet) {
			t.Errorf("(%q).Subtract(%q)=%v, want %v", tt.a, tt.b, gotSet, wantSet)
		}
	}
}

func TestExprSiblingParent(t *testing.T) {
	if _, ok := Whole.Sibling(); ok {
		t.Error("whole space must not have a sibling")
	}
	if _, ok := Whole.Parent(); ok {
		t.Error("whole space must not have a parent")
	}
	sib, ok := Expr("10").Sibling()
	if !ok || sib != "11" {
		t.Errorf("Sibling(10)=(%q,%v), want (11,true)", sib, ok)
	}
	par, ok := Expr("10").Parent()
	if !ok || par != "1" {
		t.Errorf("Parent(10)=(%q,%v), want (1,true)", par, ok)
	}
}

func TestExprTruncateAndCommonPrefix(t *testing.T) {
	if got := Expr("10110").Truncate(3); got != "101" {
		t.Errorf("Truncate=%q, want 101", got)
	}
	if got := Expr("10").Truncate(5); got != "10" {
		t.Errorf("Truncate=%q, want 10", got)
	}
	if got := Expr("10110").Truncate(-1); got != Whole {
		t.Errorf("Truncate(-1)=%q, want whole", got)
	}
	if got := Expr("1011").CommonPrefix("1001"); got != "10" {
		t.Errorf("CommonPrefix=%q, want 10", got)
	}
	if got := Expr("0").CommonPrefix("1"); got != Whole {
		t.Errorf("CommonPrefix=%q, want whole", got)
	}
}

func TestParse(t *testing.T) {
	if e, err := Parse("ε"); err != nil || e != Whole {
		t.Errorf("Parse(ε)=(%q,%v)", e, err)
	}
	if e, err := Parse("0101"); err != nil || e != "0101" {
		t.Errorf("Parse(0101)=(%q,%v)", e, err)
	}
	if _, err := Parse("01x"); err == nil {
		t.Error("Parse(01x) should fail")
	}
}

func TestSetCanonical(t *testing.T) {
	tests := []struct {
		name string
		in   []Expr
		want Set
	}{
		{"empty", nil, nil},
		{"dedup", []Expr{"10", "10"}, Set{"10"}},
		{"covered removed", []Expr{"1", "10", "101"}, Set{"1"}},
		{"siblings merge", []Expr{"0000", "0001"}, Set{"000"}},
		{"cascade merge", []Expr{"00", "010", "011"}, Set{"0"}},
		{"whole from halves", []Expr{"0", "1"}, Set{Whole}},
		{"paper merge example", []Expr{"0000", "0010", "0001", "0011"}, Set{"00"}},
		{"disjoint kept", []Expr{"110", "100"}, Set{"100", "110"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewSet(tt.in...)
			if !got.Equal(tt.want) {
				t.Fatalf("NewSet(%v)=%v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet("110", "100") // paper's advertisement {110,100}
	b := NewSet("1")

	if !a.OverlapsSet(b) || !b.OverlapsSet(a) {
		t.Fatal("sets must overlap")
	}
	if !b.Covers(a) {
		t.Error("{1} must cover {110,100}")
	}
	if a.Covers(b) {
		t.Error("{110,100} must not cover {1}")
	}
	inter := a.Intersect(b)
	if !inter.Equal(a) {
		t.Errorf("Intersect=%v, want %v", inter, a)
	}
	diff := b.Subtract(a)
	want := NewSet("101", "111")
	if !diff.Equal(want) {
		t.Errorf("Subtract=%v, want %v", diff, want)
	}
	uni := a.Union(diff)
	if !uni.Equal(b) {
		t.Errorf("Union=%v, want %v", uni, b)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet("10", "01")
	if !s.Contains("101") {
		t.Error("set must contain 101")
	}
	if s.Contains("11") {
		t.Error("set must not contain 11")
	}
	if !s.Overlaps("1") { // "1" overlaps member "10"
		t.Error("set must overlap 1")
	}
}

func TestSetFraction(t *testing.T) {
	tests := []struct {
		s    Set
		want float64
	}{
		{NewSet(Whole), 1.0},
		{NewSet("0"), 0.5},
		{NewSet("00", "01", "10"), 0.75},
		{nil, 0.0},
	}
	for _, tt := range tests {
		if got := tt.s.Fraction(); got != tt.want {
			t.Errorf("Fraction(%v)=%v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestSetTruncate(t *testing.T) {
	s := NewSet("0000", "0010", "111")
	got := s.Truncate(2)
	want := NewSet("00", "11")
	if !got.Equal(want) {
		t.Errorf("Truncate=%v, want %v", got, want)
	}
}

// randomExpr generates a random dz expression of length up to maxLen.
func randomExpr(r *rand.Rand, maxLen int) Expr {
	n := r.Intn(maxLen + 1)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('0' + r.Intn(2))
	}
	return Expr(buf)
}

func randomSet(r *rand.Rand, maxMembers, maxLen int) Set {
	n := r.Intn(maxMembers + 1)
	exprs := make([]Expr, n)
	for i := range exprs {
		exprs[i] = randomExpr(r, maxLen)
	}
	return NewSet(exprs...)
}

func TestPropertySubtractDisjointAndComplete(t *testing.T) {
	// For any a, b: a.Subtract(b) ∪ (a ∩ b) == a, and the difference never
	// overlaps b.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 8)
		b := randomExpr(r, 8)
		diff := NewSet(a.Subtract(b)...)
		for _, m := range diff {
			if m.Overlaps(b) {
				return false
			}
		}
		inter := Set{a}.IntersectExpr(b)
		rebuilt := diff.Union(inter)
		return rebuilt.Equal(NewSet(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySetAlgebra(t *testing.T) {
	// (a − b) ∪ (a ∩ b) == a, (a − b) ∩ b == ∅, a ⊆ a ∪ b.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 6, 7)
		b := randomSet(r, 6, 7)
		diff := a.Subtract(b)
		inter := a.Intersect(b)
		if !diff.Union(inter).Equal(a) {
			return false
		}
		if !diff.Intersect(b).IsEmpty() {
			return false
		}
		return a.Union(b).Covers(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCanonicalIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 8, 7)
		return s.Canonical().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCanonicalNoCoverNoSiblings(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 8, 7)
		for i, a := range s {
			for j, b := range s {
				if i != j && a.Covers(b) {
					return false
				}
			}
			if sib, ok := a.Sibling(); ok {
				for _, b := range s {
					if b == sib {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 6, 7)
		b := randomSet(r, 6, 7)
		return a.Intersect(b).Equal(b.Intersect(a)) &&
			a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetStringAndClone(t *testing.T) {
	s := NewSet("10", "0")
	if got := s.String(); got != "{0, 10}" {
		t.Errorf("String()=%q", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty String()=%q", got)
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Error("clone must equal original")
	}
	c[0] = "111"
	if s[0] == "111" {
		t.Error("clone must not alias original")
	}
	if (Set)(nil).Clone() != nil {
		t.Error("nil clone must be nil")
	}
}

func TestExprString(t *testing.T) {
	if Whole.String() != "ε" {
		t.Errorf("whole String()=%q", Whole.String())
	}
	if Expr("01").String() != "01" {
		t.Errorf("String()=%q", Expr("01").String())
	}
}

func TestExprCompare(t *testing.T) {
	if Expr("0").Compare("0") != 0 {
		t.Error("equal compare")
	}
	if Expr("0").Compare("1") != -1 {
		t.Error("less compare")
	}
	if Expr("1").Compare("0") != 1 {
		t.Error("greater compare")
	}
}

func BenchmarkSetIntersect(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	s1 := randomSet(r, 16, 20)
	s2 := randomSet(r, 16, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s1.Intersect(s2)
	}
}

func BenchmarkCanonical(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	exprs := make([]Expr, 64)
	for i := range exprs {
		exprs[i] = randomExpr(r, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSet(exprs...)
	}
}

// TestPropertyFastSetLookups: the binary-search Contains/Overlaps must
// agree with a linear scan on canonical sets.
func TestPropertyFastSetLookups(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 10, 8)
		for i := 0; i < 30; i++ {
			e := randomExpr(r, 10)
			wantContains, wantOverlaps := false, false
			for _, m := range s {
				if m.Covers(e) {
					wantContains = true
				}
				if m.Overlaps(e) {
					wantOverlaps = true
				}
			}
			if s.Contains(e) != wantContains {
				return false
			}
			if s.Overlaps(e) != wantOverlaps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
