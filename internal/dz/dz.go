// Package dz implements the dz-expression algebra that PLEROMA uses for
// spatial indexing of the event space (Section 2 of the paper).
//
// The event space is recursively bisected, cycling through the dimensions;
// every subspace reachable by such bisections is identified by a binary
// string called a dz-expression. The algebra has four defining properties:
//
//  1. the shorter the dz, the larger the subspace;
//  2. dz_i covers dz_j iff dz_i is a prefix of dz_j (written dz_i ≥ dz_j);
//  3. two subspaces overlap iff one covers the other, and the overlap is
//     identified by the longer of the two expressions;
//  4. the difference of two overlapping subspaces is in general a set of
//     subspaces (the "siblings" along the refinement path).
//
// Expressions compose into Sets, which are kept canonical: no member covers
// another, complete sibling pairs are merged, and members are sorted.
package dz

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a dz-expression: a string over the alphabet {0,1}. The empty
// expression denotes the whole event space.
type Expr string

// Whole is the dz-expression of the entire event space.
const Whole Expr = ""

// Validate reports whether the expression contains only '0' and '1'.
func (e Expr) Validate() error {
	for i := 0; i < len(e); i++ {
		if e[i] != '0' && e[i] != '1' {
			return fmt.Errorf("dz: invalid character %q at index %d in %q", e[i], i, string(e))
		}
	}
	return nil
}

// Len returns the number of bisections encoded by the expression.
func (e Expr) Len() int { return len(e) }

// Covers reports whether e covers o, i.e. whether the subspace of o is
// contained in the subspace of e. This is the prefix relation: e ≥ o.
// Every expression covers itself.
func (e Expr) Covers(o Expr) bool {
	return len(e) <= len(o) && o[:len(e)] == e
}

// CoversStrictly reports whether e covers o and e != o.
func (e Expr) CoversStrictly(o Expr) bool {
	return len(e) < len(o) && o[:len(e)] == e
}

// Overlaps reports whether the two subspaces overlap, which for
// dz-expressions means one covers the other.
func (e Expr) Overlaps(o Expr) bool {
	return e.Covers(o) || o.Covers(e)
}

// Overlap returns the overlap of the two subspaces (the longer expression)
// and whether they overlap at all.
func (e Expr) Overlap(o Expr) (Expr, bool) {
	switch {
	case e.Covers(o):
		return o, true
	case o.Covers(e):
		return e, true
	default:
		return "", false
	}
}

// Child returns the expression refined by one bisection step. bit must be 0
// or 1.
func (e Expr) Child(bit byte) Expr {
	if bit == 0 {
		return e + "0"
	}
	return e + "1"
}

// Parent returns the expression with the last bisection removed. The whole
// space has no parent; ok is false in that case.
func (e Expr) Parent() (parent Expr, ok bool) {
	if len(e) == 0 {
		return "", false
	}
	return e[:len(e)-1], true
}

// Sibling returns the expression denoting the other half of e's parent
// subspace. The whole space has no sibling; ok is false in that case.
func (e Expr) Sibling() (sib Expr, ok bool) {
	if len(e) == 0 {
		return "", false
	}
	last := e[len(e)-1]
	flipped := byte('0')
	if last == '0' {
		flipped = '1'
	}
	return e[:len(e)-1] + Expr(flipped), true
}

// Subtract returns the set of maximal subspaces of e that do not overlap o.
// If e and o do not overlap, the result is {e}. If o covers e, the result is
// empty. Otherwise (e strictly covers o) the result is the set of siblings
// along the refinement path from e to o; e.g. "0" − "000" = {"001", "01"}.
func (e Expr) Subtract(o Expr) []Expr {
	if !e.Overlaps(o) {
		return []Expr{e}
	}
	if o.Covers(e) {
		return nil
	}
	// e strictly covers o: collect the sibling of each step on the path.
	out := make([]Expr, 0, len(o)-len(e))
	for i := len(e); i < len(o); i++ {
		prefix := o[:i+1]
		sib, _ := prefix.Sibling()
		out = append(out, sib)
	}
	return out
}

// CommonPrefix returns the longest expression covering both e and o.
func (e Expr) CommonPrefix(o Expr) Expr {
	n := len(e)
	if len(o) < n {
		n = len(o)
	}
	i := 0
	for i < n && e[i] == o[i] {
		i++
	}
	return e[:i]
}

// Truncate returns the expression limited to at most maxLen bisections.
// Truncation coarsens the subspace and is the source of false positives when
// the address space cannot hold the full expression (Section 6.4).
func (e Expr) Truncate(maxLen int) Expr {
	if maxLen < 0 {
		maxLen = 0
	}
	if len(e) <= maxLen {
		return e
	}
	return e[:maxLen]
}

// Compare orders expressions lexicographically with shorter prefixes first.
// It returns -1, 0, or 1.
func (e Expr) Compare(o Expr) int {
	if e == o {
		return 0
	}
	if e < o {
		return -1
	}
	return 1
}

// String implements fmt.Stringer. The whole space prints as "ε".
func (e Expr) String() string {
	if len(e) == 0 {
		return "ε"
	}
	return string(e)
}

// Parse converts a textual dz-expression ("ε" or a 0/1 string) into an Expr.
func Parse(s string) (Expr, error) {
	if s == "ε" || s == "" {
		return Whole, nil
	}
	e := Expr(s)
	if err := e.Validate(); err != nil {
		return "", err
	}
	return e, nil
}

// Set is a collection of dz-expressions describing a (possibly
// disconnected) region of the event space. Sets returned by this package
// are canonical: sorted, with no member covering another and with complete
// sibling pairs merged into their parent.
type Set []Expr

// NewSet builds a canonical set from the given expressions.
func NewSet(exprs ...Expr) Set {
	s := make(Set, len(exprs))
	copy(s, exprs)
	return s.Canonical()
}

// Canonical returns the canonical form of the set: members sorted, covered
// members removed, and complete sibling pairs merged into their parent
// (repeatedly, until a fixed point).
func (s Set) Canonical() Set {
	if len(s) == 0 {
		return nil
	}
	work := make([]Expr, len(s))
	copy(work, s)
	for {
		sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
		// Remove duplicates and covered members. After sorting, a covering
		// prefix sorts before everything it covers... not in general (e.g.
		// "0" < "00" holds, and "1" < "10"), so a single linear pass with the
		// last kept member suffices: any member covered by an earlier member
		// is adjacent to some retained prefix in lexicographic order.
		kept := work[:0]
		for _, e := range work {
			if len(kept) > 0 && kept[len(kept)-1].Covers(e) {
				continue
			}
			kept = append(kept, e)
		}
		work = kept
		// Merge complete sibling pairs.
		merged := false
		out := work[:0]
		i := 0
		for i < len(work) {
			if i+1 < len(work) {
				a, b := work[i], work[i+1]
				if sa, ok := a.Sibling(); ok && sa == b {
					out = append(out, a[:len(a)-1])
					merged = true
					i += 2
					continue
				}
			}
			out = append(out, work[i])
			i++
		}
		work = out
		if !merged {
			break
		}
	}
	if len(work) == 0 {
		return nil
	}
	res := make(Set, len(work))
	copy(res, work)
	return res
}

// IsEmpty reports whether the set describes the empty region.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// IsWhole reports whether the set describes the entire event space.
func (s Set) IsWhole() bool { return len(s) == 1 && s[0] == Whole }

// Contains reports whether the region of the set covers the expression e.
// It relies on the canonical form (sorted, pairwise disjoint members): at
// most one member can cover e, and every expression between that member
// and e in lexicographic order would share its prefix, so the candidate is
// always the member immediately at or before e.
func (s Set) Contains(e Expr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] > e })
	return i > 0 && s[i-1].Covers(e)
}

// Overlaps reports whether the set's region overlaps the expression e:
// either some member covers e, or e covers some member. Members covered by
// e form a contiguous lexicographic range starting at the insertion point
// of e (canonical form assumed, as in Contains).
func (s Set) Overlaps(e Expr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] > e })
	if i > 0 && s[i-1].Covers(e) {
		return true
	}
	return i < len(s) && e.Covers(s[i])
}

// OverlapsSet reports whether two regions overlap.
func (s Set) OverlapsSet(o Set) bool {
	for _, m := range s {
		if o.Overlaps(m) {
			return true
		}
	}
	return false
}

// Covers reports whether the region of s covers the entire region of o.
func (s Set) Covers(o Set) bool {
	for _, e := range o {
		rest := Set{e}
		for _, m := range s {
			rest = rest.SubtractExpr(m)
			if rest.IsEmpty() {
				break
			}
		}
		if !rest.IsEmpty() {
			return false
		}
	}
	return true
}

// Intersect returns the canonical intersection of the two regions.
func (s Set) Intersect(o Set) Set {
	var out []Expr
	for _, a := range s {
		for _, b := range o {
			if ov, ok := a.Overlap(b); ok {
				out = append(out, ov)
			}
		}
	}
	return NewSet(out...)
}

// IntersectExpr returns the canonical intersection of the region with a
// single expression.
func (s Set) IntersectExpr(e Expr) Set {
	return s.Intersect(Set{e})
}

// SubtractExpr returns the canonical region of s minus the subspace of e.
func (s Set) SubtractExpr(e Expr) Set {
	var out []Expr
	for _, m := range s {
		out = append(out, m.Subtract(e)...)
	}
	return NewSet(out...)
}

// Subtract returns the canonical region of s minus the region of o.
func (s Set) Subtract(o Set) Set {
	res := s
	for _, e := range o {
		res = res.SubtractExpr(e)
		if res.IsEmpty() {
			return nil
		}
	}
	return res
}

// Union returns the canonical union of the two regions.
func (s Set) Union(o Set) Set {
	out := make([]Expr, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return NewSet(out...)
}

// Equal reports whether two canonical sets describe the same region.
// Callers should canonicalise first (sets produced by this package are).
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Truncate returns the canonical set with every member truncated to maxLen.
func (s Set) Truncate(maxLen int) Set {
	out := make([]Expr, len(s))
	for i, e := range s {
		out[i] = e.Truncate(maxLen)
	}
	return NewSet(out...)
}

// MaxLen returns the length of the longest member.
func (s Set) MaxLen() int {
	m := 0
	for _, e := range s {
		if len(e) > m {
			m = len(e)
		}
	}
	return m
}

// Fraction returns the fraction of the whole event space covered by the
// region, assuming the set is canonical (members pairwise disjoint).
func (s Set) Fraction() float64 {
	f := 0.0
	for _, e := range s {
		f += 1.0 / float64(uint64(1)<<uint(min(e.Len(), 62)))
	}
	return f
}

// String renders the set as "{dz1, dz2, ...}".
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
