// Package dz implements the dz-expression algebra that PLEROMA uses for
// spatial indexing of the event space (Section 2 of the paper).
//
// The event space is recursively bisected, cycling through the dimensions;
// every subspace reachable by such bisections is identified by a binary
// string called a dz-expression. The algebra has four defining properties:
//
//  1. the shorter the dz, the larger the subspace;
//  2. dz_i covers dz_j iff dz_i is a prefix of dz_j (written dz_i ≥ dz_j);
//  3. two subspaces overlap iff one covers the other, and the overlap is
//     identified by the longer of the two expressions;
//  4. the difference of two overlapping subspaces is in general a set of
//     subspaces (the "siblings" along the refinement path).
//
// Expressions compose into Sets, which are kept canonical: no member covers
// another, complete sibling pairs are merged, and members are sorted.
package dz

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Expr is a dz-expression: a string over the alphabet {0,1}. The empty
// expression denotes the whole event space.
type Expr string

// Whole is the dz-expression of the entire event space.
const Whole Expr = ""

// Validate reports whether the expression contains only '0' and '1'.
func (e Expr) Validate() error {
	for i := 0; i < len(e); i++ {
		if e[i] != '0' && e[i] != '1' {
			return fmt.Errorf("dz: invalid character %q at index %d in %q", e[i], i, string(e))
		}
	}
	return nil
}

// Len returns the number of bisections encoded by the expression.
func (e Expr) Len() int { return len(e) }

// Covers reports whether e covers o, i.e. whether the subspace of o is
// contained in the subspace of e. This is the prefix relation: e ≥ o.
// Every expression covers itself.
func (e Expr) Covers(o Expr) bool {
	return len(e) <= len(o) && o[:len(e)] == e
}

// CoversStrictly reports whether e covers o and e != o.
func (e Expr) CoversStrictly(o Expr) bool {
	return len(e) < len(o) && o[:len(e)] == e
}

// Overlaps reports whether the two subspaces overlap, which for
// dz-expressions means one covers the other.
func (e Expr) Overlaps(o Expr) bool {
	return e.Covers(o) || o.Covers(e)
}

// Overlap returns the overlap of the two subspaces (the longer expression)
// and whether they overlap at all.
func (e Expr) Overlap(o Expr) (Expr, bool) {
	switch {
	case e.Covers(o):
		return o, true
	case o.Covers(e):
		return e, true
	default:
		return "", false
	}
}

// Child returns the expression refined by one bisection step. bit must be 0
// or 1.
func (e Expr) Child(bit byte) Expr {
	if bit == 0 {
		return e + "0"
	}
	return e + "1"
}

// Parent returns the expression with the last bisection removed. The whole
// space has no parent; ok is false in that case.
func (e Expr) Parent() (parent Expr, ok bool) {
	if len(e) == 0 {
		return "", false
	}
	return e[:len(e)-1], true
}

// Sibling returns the expression denoting the other half of e's parent
// subspace. The whole space has no sibling; ok is false in that case.
func (e Expr) Sibling() (sib Expr, ok bool) {
	if len(e) == 0 {
		return "", false
	}
	last := e[len(e)-1]
	flipped := byte('0')
	if last == '0' {
		flipped = '1'
	}
	return e[:len(e)-1] + Expr(flipped), true
}

// Subtract returns the set of maximal subspaces of e that do not overlap o.
// If e and o do not overlap, the result is {e}. If o covers e, the result is
// empty. Otherwise (e strictly covers o) the result is the set of siblings
// along the refinement path from e to o; e.g. "0" − "000" = {"001", "01"}.
func (e Expr) Subtract(o Expr) []Expr {
	if !e.Overlaps(o) {
		return []Expr{e}
	}
	if o.Covers(e) {
		return nil
	}
	// e strictly covers o: collect the sibling of each step on the path.
	out := make([]Expr, 0, len(o)-len(e))
	for i := len(e); i < len(o); i++ {
		prefix := o[:i+1]
		sib, _ := prefix.Sibling()
		out = append(out, sib)
	}
	return out
}

// CommonPrefix returns the longest expression covering both e and o.
func (e Expr) CommonPrefix(o Expr) Expr {
	n := len(e)
	if len(o) < n {
		n = len(o)
	}
	i := 0
	for i < n && e[i] == o[i] {
		i++
	}
	return e[:i]
}

// Truncate returns the expression limited to at most maxLen bisections.
// Truncation coarsens the subspace and is the source of false positives when
// the address space cannot hold the full expression (Section 6.4).
func (e Expr) Truncate(maxLen int) Expr {
	if maxLen < 0 {
		maxLen = 0
	}
	if len(e) <= maxLen {
		return e
	}
	return e[:maxLen]
}

// Compare orders expressions lexicographically with shorter prefixes first.
// It returns -1, 0, or 1.
func (e Expr) Compare(o Expr) int {
	if e == o {
		return 0
	}
	if e < o {
		return -1
	}
	return 1
}

// String implements fmt.Stringer. The whole space prints as "ε".
func (e Expr) String() string {
	if len(e) == 0 {
		return "ε"
	}
	return string(e)
}

// Parse converts a textual dz-expression ("ε" or a 0/1 string) into an Expr.
func Parse(s string) (Expr, error) {
	if s == "ε" || s == "" {
		return Whole, nil
	}
	e := Expr(s)
	if err := e.Validate(); err != nil {
		return "", err
	}
	return e, nil
}

// Set is a collection of dz-expressions describing a (possibly
// disconnected) region of the event space. Sets returned by this package
// are canonical: sorted, with no member covering another and with complete
// sibling pairs merged into their parent.
type Set []Expr

// NewSet builds a canonical set from the given expressions.
func NewSet(exprs ...Expr) Set {
	s := make(Set, len(exprs))
	copy(s, exprs)
	return s.Canonical()
}

// Canonical returns the canonical form of the set: members sorted, covered
// members removed, and complete sibling pairs merged into their parent.
func (s Set) Canonical() Set {
	if len(s) == 0 {
		return nil
	}
	work := make([]Expr, len(s))
	copy(work, s)
	slices.Sort(work)
	return canonicalizeSorted(work)
}

// canonicalizeSorted canonicalises an already sorted slice in place and
// returns it. Two linear passes reach the fixed point:
//
// Covered-member removal compares against the last kept member only: in
// lexicographic order every expression between a prefix and one of its
// extensions is itself an extension of that prefix, so a covering member is
// still "last kept" when the covered one arrives.
//
// The sibling merge keeps its output as a stack: when a merged parent
// completes its own sibling pair the pair merges immediately ("00","01","1"
// → "0","1" → ε in one sweep). A merged parent can never cover a later
// member — such a member would have been covered by one of the children and
// removed by the first pass — so no further passes are needed.
func canonicalizeSorted(work []Expr) Set {
	if len(work) == 0 {
		return nil
	}
	kept := work[:0]
	for _, e := range work {
		if len(kept) > 0 && kept[len(kept)-1].Covers(e) {
			continue
		}
		kept = append(kept, e)
	}
	out := kept[:0]
	for _, e := range kept {
		for len(out) > 0 {
			top := out[len(out)-1]
			if sib, ok := top.Sibling(); ok && sib == e {
				out = out[:len(out)-1]
				e = top[:len(top)-1]
				continue
			}
			break
		}
		out = append(out, e)
	}
	return Set(out)
}

// isCanonical reports whether the set is already in canonical form:
// strictly sorted, no member covering another, no complete sibling pair. In
// a sorted cover-free list both a covering member and a complete sibling
// are always adjacent, so one linear pass is a complete check. The
// merge-based set operations use it to skip re-canonicalising inputs this
// package produced (the overwhelmingly common case).
func (s Set) isCanonical() bool {
	for i := 1; i < len(s); i++ {
		prev, cur := s[i-1], s[i]
		if prev >= cur || prev.Covers(cur) {
			return false
		}
		if sib, ok := prev.Sibling(); ok && sib == cur {
			return false
		}
	}
	return true
}

// canon returns the set itself when already canonical, else its canonical
// form.
func (s Set) canon() Set {
	if s.isCanonical() {
		return s
	}
	return s.Canonical()
}

// IsEmpty reports whether the set describes the empty region.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// IsWhole reports whether the set describes the entire event space.
func (s Set) IsWhole() bool { return len(s) == 1 && s[0] == Whole }

// Contains reports whether the region of the set covers the expression e.
// It relies on the canonical form (sorted, pairwise disjoint members): at
// most one member can cover e, and every expression between that member
// and e in lexicographic order would share its prefix, so the candidate is
// always the member immediately at or before e.
func (s Set) Contains(e Expr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] > e })
	return i > 0 && s[i-1].Covers(e)
}

// Overlaps reports whether the set's region overlaps the expression e:
// either some member covers e, or e covers some member. Members covered by
// e form a contiguous lexicographic range starting at the insertion point
// of e (canonical form assumed, as in Contains).
func (s Set) Overlaps(e Expr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] > e })
	if i > 0 && s[i-1].Covers(e) {
		return true
	}
	return i < len(s) && e.Covers(s[i])
}

// OverlapsSet reports whether two regions overlap.
func (s Set) OverlapsSet(o Set) bool {
	for _, m := range s {
		if o.Overlaps(m) {
			return true
		}
	}
	return false
}

// Covers reports whether the region of s covers the entire region of o.
// For canonical operands this is a two-pointer merge: each member of o must
// be covered by a single member of s — members of s that merely tiled an
// o-member between them would have merged during canonicalisation.
func (s Set) Covers(o Set) bool {
	if len(o) == 0 {
		return true
	}
	s, o = s.canon(), o.canon()
	i := 0
	for _, e := range o {
		// Skipped members cannot cover anything later: extensions of a
		// non-prefix expression below e also sort below e.
		for i < len(s) && s[i] < e && !s[i].Covers(e) {
			i++
		}
		if i == len(s) || !s[i].Covers(e) {
			return false
		}
	}
	return true
}

// Intersect returns the canonical intersection of the two regions. Members
// of a canonical set are pairwise disjoint, so overlapping pairs line up in
// one sorted merge and each overlap is the longer (finer) expression of its
// pair.
func (s Set) Intersect(o Set) Set {
	s, o = s.canon(), o.canon()
	var out []Expr
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		a, b := s[i], o[j]
		switch {
		case a.Covers(b):
			out = append(out, b)
			j++
		case b.Covers(a):
			out = append(out, a)
			i++
		case a < b:
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	// The merge emits sorted, pairwise-disjoint overlaps; a final pass only
	// re-merges sibling pairs that became complete (e.g. {0} ∩ {00,01}).
	return canonicalizeSorted(out)
}

// IntersectExpr returns the canonical intersection of the region with a
// single expression.
func (s Set) IntersectExpr(e Expr) Set {
	return s.Intersect(Set{e})
}

// SubtractExpr returns the canonical region of s minus the subspace of e.
func (s Set) SubtractExpr(e Expr) Set {
	return s.Subtract(Set{e})
}

// Subtract returns the canonical region of s minus the region of o. Both
// canonical member lists are sorted and pairwise disjoint, so one merge
// pass suffices: each member of o either erases, fragments (Expr.Subtract
// siblings), or misses the current member of s, and fragments are carved
// further in place until the pass moves beyond them.
func (s Set) Subtract(o Set) Set {
	if len(o) == 0 {
		return s
	}
	if len(s) == 0 {
		return nil
	}
	s, o = s.canon(), o.canon()
	out := make([]Expr, 0, len(s))
	frags := make([]Expr, 0, 8)
	j := 0
	for _, a := range s {
		for j < len(o) && o[j] < a && !o[j].Covers(a) {
			j++
		}
		if j < len(o) && o[j].Covers(a) {
			continue // a fully erased; o[j] may still cover later members
		}
		if j == len(o) || !a.Covers(o[j]) {
			out = append(out, a)
			continue
		}
		// a strictly covers a run of members of o: carve each out of a's
		// fragment list, flushing fragments the run has moved past — a later
		// subtrahend can never reach back into a flushed fragment.
		frags = append(frags[:0], a)
		fi := 0
		for j < len(o) && a.Covers(o[j]) {
			b := o[j]
			j++
			for fi < len(frags) && frags[fi] < b && !frags[fi].Covers(b) {
				out = append(out, frags[fi])
				fi++
			}
			if fi < len(frags) && frags[fi].Covers(b) {
				repl := frags[fi].Subtract(b)
				slices.Sort(repl)
				frags = append(frags[:fi], append(repl, frags[fi+1:]...)...)
			}
		}
		out = append(out, frags[fi:]...)
	}
	if len(out) == 0 {
		return nil
	}
	return canonicalizeSorted(out)
}

// Union returns the canonical union of the two regions via a sorted merge
// of the two canonical member lists.
func (s Set) Union(o Set) Set {
	s, o = s.canon(), o.canon()
	if len(s) == 0 {
		if len(o) == 0 {
			return nil
		}
		return o.Clone()
	}
	if len(o) == 0 {
		return s.Clone()
	}
	merged := make([]Expr, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		if s[i] <= o[j] {
			merged = append(merged, s[i])
			i++
		} else {
			merged = append(merged, o[j])
			j++
		}
	}
	merged = append(merged, s[i:]...)
	merged = append(merged, o[j:]...)
	return canonicalizeSorted(merged)
}

// Equal reports whether two canonical sets describe the same region.
// Callers should canonicalise first (sets produced by this package are).
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Truncate returns the canonical set with every member truncated to maxLen.
func (s Set) Truncate(maxLen int) Set {
	out := make([]Expr, len(s))
	for i, e := range s {
		out[i] = e.Truncate(maxLen)
	}
	return NewSet(out...)
}

// MaxLen returns the length of the longest member.
func (s Set) MaxLen() int {
	m := 0
	for _, e := range s {
		if len(e) > m {
			m = len(e)
		}
	}
	return m
}

// Fraction returns the fraction of the whole event space covered by the
// region, assuming the set is canonical (members pairwise disjoint).
func (s Set) Fraction() float64 {
	f := 0.0
	for _, e := range s {
		f += 1.0 / float64(uint64(1)<<uint(min(e.Len(), 62)))
	}
	return f
}

// String renders the set as "{dz1, dz2, ...}".
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
