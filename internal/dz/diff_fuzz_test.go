package dz

import (
	"sort"
	"strings"
	"testing"
)

// diff_fuzz_test.go differentially fuzzes the prefix-index refactor: the
// compressed trie against a naive map + string-prefix oracle, and the
// merge-based Set algebra against the pre-refactor O(n²) implementations,
// which are preserved below as naive* oracles.

// naiveCanonical is the pre-refactor canonicalisation: sort, remove covered
// members, merge adjacent sibling pairs, repeated until a fixed point.
func naiveCanonical(s Set) Set {
	if len(s) == 0 {
		return nil
	}
	work := make([]Expr, len(s))
	copy(work, s)
	for {
		sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
		kept := work[:0]
		for _, e := range work {
			if len(kept) > 0 && kept[len(kept)-1].Covers(e) {
				continue
			}
			kept = append(kept, e)
		}
		work = kept
		merged := false
		out := work[:0]
		i := 0
		for i < len(work) {
			if i+1 < len(work) {
				a, b := work[i], work[i+1]
				if sa, ok := a.Sibling(); ok && sa == b {
					out = append(out, a[:len(a)-1])
					merged = true
					i += 2
					continue
				}
			}
			out = append(out, work[i])
			i++
		}
		work = out
		if !merged {
			break
		}
	}
	if len(work) == 0 {
		return nil
	}
	res := make(Set, len(work))
	copy(res, work)
	return res
}

// naiveSubtractExpr is the pre-refactor per-member subtraction.
func naiveSubtractExpr(s Set, e Expr) Set {
	var out []Expr
	for _, m := range s {
		out = append(out, m.Subtract(e)...)
	}
	return naiveCanonical(Set(out))
}

// naiveSubtract folds naiveSubtractExpr over the subtrahend's members.
func naiveSubtract(s, o Set) Set {
	res := s
	for _, e := range o {
		res = naiveSubtractExpr(res, e)
		if res.IsEmpty() {
			return nil
		}
	}
	return res
}

// naiveCovers is the pre-refactor subtract-until-empty coverage check.
func naiveCovers(s, o Set) bool {
	for _, e := range o {
		rest := Set{e}
		for _, m := range s {
			rest = naiveSubtractExpr(rest, m)
			if rest.IsEmpty() {
				break
			}
		}
		if !rest.IsEmpty() {
			return false
		}
	}
	return true
}

// naiveIntersect is the pre-refactor pairwise overlap scan.
func naiveIntersect(s, o Set) Set {
	var out []Expr
	for _, a := range s {
		for _, b := range o {
			if ov, ok := a.Overlap(b); ok {
				out = append(out, ov)
			}
		}
	}
	return naiveCanonical(Set(out))
}

// naiveUnion appends and canonicalises.
func naiveUnion(s, o Set) Set {
	out := make([]Expr, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return naiveCanonical(Set(out))
}

// sanitizeSet maps arbitrary fuzz bytes onto a raw (deliberately
// non-canonical) member list: length prefix, then bits.
func sanitizeSet(raw string) Set {
	var out Set
	for len(raw) > 0 && len(out) < 8 {
		n := int(raw[0] % 13)
		raw = raw[1:]
		if n > len(raw) {
			n = len(raw)
		}
		out = append(out, sanitize(raw[:n], 16))
		raw = raw[n:]
	}
	return out
}

// FuzzSetAlgebraOldVsNew replays every rewritten Set operation against its
// preserved pre-refactor implementation on the same raw inputs.
func FuzzSetAlgebraOldVsNew(f *testing.F) {
	f.Add("\x03abc\x02de\x04fghi", "\x02xy\x05zzzzz")
	f.Add("\x01a\x01b\x01c\x01d", "")
	f.Add("\x0cLLLLLLLLLLLL\x0cMMMMMMMMMMMM", "\x04abcd\x04efgh")
	f.Fuzz(func(t *testing.T, rawA, rawB string) {
		a := sanitizeSet(rawA)
		b := sanitizeSet(rawB)

		canon := a.Canonical()
		if !canon.Equal(naiveCanonical(a)) {
			t.Fatalf("Canonical(%v) = %v, naive = %v", a, canon, naiveCanonical(a))
		}
		if !canon.isCanonical() {
			t.Fatalf("Canonical(%v) = %v not canonical", a, canon)
		}
		if got, want := a.Union(b), naiveUnion(a, b); !got.Equal(want) {
			t.Fatalf("Union(%v, %v) = %v, naive = %v", a, b, got, want)
		}
		if got, want := a.Intersect(b), naiveIntersect(a, b); !got.Equal(want) {
			t.Fatalf("Intersect(%v, %v) = %v, naive = %v", a, b, got, want)
		}
		if got, want := a.Subtract(b), naiveSubtract(a, b); !got.Canonical().Equal(want.Canonical()) {
			t.Fatalf("Subtract(%v, %v) = %v, naive = %v", a, b, got, want)
		}
		if got, want := a.Covers(b), naiveCovers(a, b); got != want {
			t.Fatalf("Covers(%v, %v) = %v, naive = %v", a, b, got, want)
		}
		if len(b) > 0 {
			if got, want := a.SubtractExpr(b[0]), naiveSubtractExpr(a, b[0]); !got.Canonical().Equal(want.Canonical()) {
				t.Fatalf("SubtractExpr(%v, %q) = %v, naive = %v", a, b[0], got, want)
			}
		}
		// Region identities tie the operations to each other.
		inter := a.Intersect(b)
		if !a.Covers(inter) || !b.Covers(inter) {
			t.Fatalf("intersection %v escapes an operand (%v, %v)", inter, a, b)
		}
		if !a.Subtract(b).Union(inter).Equal(canon) {
			t.Fatalf("(a−b) ∪ (a∩b) ≠ a for %v, %v", a, b)
		}
	})
}

// FuzzTrieVsNaive drives arbitrary insert/delete sequences through the trie
// and a map + strings.HasPrefix oracle, checking LongestPrefix, CoversAny,
// and WalkCovered after every operation.
func FuzzTrieVsNaive(f *testing.F) {
	f.Add([]byte{0, 3, 'a', 'b', 'c', 2, 3, 'a', 'b', 'c'}, "abcd")
	f.Add([]byte{0, 0, 0, 5, 'q', 'q', 'q', 'q', 'q', 1, 2, 'z', 'z'}, "")
	f.Add([]byte{0, 16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, "\x01\x02\x03")
	f.Fuzz(func(t *testing.T, ops []byte, rawProbe string) {
		var tr Trie[int]
		naive := make(map[Expr]int)
		check := func(probe Expr) {
			pk, ok := KeyOf(probe)
			if !ok {
				t.Fatalf("probe %q overflowed", probe)
			}
			var bestE Expr
			bestL, found := -1, false
			covered := 0
			for m := range naive {
				if strings.HasPrefix(string(probe), string(m)) && m.Len() > bestL {
					bestE, bestL, found = m, m.Len(), true
				}
				if strings.HasPrefix(string(m), string(probe)) {
					covered++
				}
			}
			gk, gv, gok := tr.LongestPrefix(pk)
			if gok != found || (found && (gk.Expr() != bestE || gv != naive[bestE])) {
				t.Fatalf("LongestPrefix(%q) = %q,%d,%v; naive %q,%d,%v",
					probe, gk.Expr(), gv, gok, bestE, naive[bestE], found)
			}
			if tr.CoversAny(pk) != found {
				t.Fatalf("CoversAny(%q) = %v, naive %v", probe, !found, found)
			}
			got := 0
			tr.WalkCovered(pk, func(Key, int) bool { got++; return true })
			if got != covered {
				t.Fatalf("WalkCovered(%q) = %d, naive %d", probe, got, covered)
			}
		}
		step := 0
		for i := 0; i < len(ops); {
			op := ops[i] % 3
			i++
			if i >= len(ops) {
				break
			}
			n := int(ops[i] % 17)
			i++
			if i+n > len(ops) {
				n = len(ops) - i
			}
			e := sanitize(string(ops[i:i+n]), 16)
			i += n
			k, _ := KeyOf(e)
			switch op {
			case 0, 1:
				_, existed := naive[e]
				naive[e] = step
				if tr.Insert(k, step) == existed {
					t.Fatalf("Insert(%q) newness diverges (existed=%v)", e, existed)
				}
			case 2:
				_, existed := naive[e]
				delete(naive, e)
				if tr.Delete(k) != existed {
					t.Fatalf("Delete(%q) diverges (existed=%v)", e, existed)
				}
			}
			step++
			if tr.Len() != len(naive) {
				t.Fatalf("Len = %d, naive %d", tr.Len(), len(naive))
			}
			check(e)
			check(sanitize(rawProbe, 20))
			check(e + sanitize(rawProbe, 4))
		}
	})
}
