// Package sortutil holds the sorted-iteration helper shared by the
// controller and interdomain layers. Deterministic map iteration is what
// keeps reconfiguration order — and with it FlowID assignment and test
// goldens — stable across runs.
package sortutil

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m in ascending order.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
