package wire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

func TestEventRoundTrip(t *testing.T) {
	ev := space.Event{Values: []uint32{0, 1023, 42, 4294967295}}
	b, err := EncodeEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 4 {
		t.Fatalf("values=%v", got.Values)
	}
	for i := range ev.Values {
		if got.Values[i] != ev.Values[i] {
			t.Errorf("value %d: %d != %d", i, got.Values[i], ev.Values[i])
		}
	}
}

func TestEventValidation(t *testing.T) {
	if _, err := EncodeEvent(space.Event{}); err == nil {
		t.Error("empty event must fail")
	}
	if _, err := EncodeEvent(space.Event{Values: make([]uint32, MaxDims+1)}); err == nil {
		t.Error("oversized event must fail")
	}
	if _, err := DecodeEvent(nil); err == nil {
		t.Error("nil payload must fail")
	}
	if _, err := DecodeEvent([]byte{99, 1, 0, 0, 0, 0}); err == nil {
		t.Error("bad version must fail")
	}
	if _, err := DecodeEvent([]byte{Version, 0}); err == nil {
		t.Error("zero dims must fail")
	}
	if _, err := DecodeEvent([]byte{Version, 2, 0, 0, 0, 0}); err == nil {
		t.Error("truncated values must fail")
	}
}

func TestSignalRoundTrip(t *testing.T) {
	s := Signal{
		Op:   "subscribe",
		ID:   "trader-42",
		Host: 17,
		Set:  dz.NewSet("101", "0010", ""),
	}
	b, err := EncodeSignal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSignal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != s.Op || got.ID != s.ID || got.Host != s.Host {
		t.Errorf("got=%+v", got)
	}
	if !got.Set.Equal(s.Set) {
		t.Errorf("set=%v, want %v", got.Set, s.Set)
	}
}

func TestSignalAllOps(t *testing.T) {
	for _, op := range []string{"advertise", "subscribe", "unsubscribe", "unadvertise"} {
		s := Signal{Op: op, ID: "x", Host: 1, Set: dz.NewSet("1")}
		b, err := EncodeSignal(s)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		got, err := DecodeSignal(b)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got.Op != op {
			t.Errorf("op=%q, want %q", got.Op, op)
		}
	}
}

func TestSignalValidation(t *testing.T) {
	if _, err := EncodeSignal(Signal{Op: "bogus", ID: "x"}); err == nil {
		t.Error("unknown op must fail")
	}
	if _, err := EncodeSignal(Signal{Op: "subscribe", ID: ""}); err == nil {
		t.Error("empty id must fail")
	}
	if _, err := EncodeSignal(Signal{Op: "subscribe", ID: strings.Repeat("x", 300)}); err == nil {
		t.Error("oversized id must fail")
	}
	long := make([]byte, MaxExprLen+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := EncodeSignal(Signal{Op: "subscribe", ID: "x",
		Set: dz.Set{dz.Expr(long)}}); err == nil {
		t.Error("oversized expr must fail")
	}
	if _, err := DecodeSignal(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := DecodeSignal([]byte{Version, 77, 1, 'x', 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad op code must fail")
	}
	ok, _ := EncodeSignal(Signal{Op: "subscribe", ID: "x", Set: dz.NewSet("1")})
	if _, err := DecodeSignal(ok[:len(ok)-1]); err == nil {
		t.Error("truncated must fail")
	}
	if _, err := DecodeSignal(append(ok, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// TestPropertySignalRoundTrip: random valid signals survive the codec.
func TestPropertySignalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := []string{"advertise", "subscribe", "unsubscribe", "unadvertise"}
		n := r.Intn(5)
		exprs := make([]dz.Expr, n)
		for i := range exprs {
			l := r.Intn(30)
			buf := make([]byte, l)
			for j := range buf {
				buf[j] = byte('0' + r.Intn(2))
			}
			exprs[i] = dz.Expr(buf)
		}
		s := Signal{
			Op:   ops[r.Intn(len(ops))],
			ID:   "id" + string(rune('a'+r.Intn(26))),
			Host: r.Uint32(),
			Set:  dz.NewSet(exprs...),
		}
		b, err := EncodeSignal(s)
		if err != nil {
			return false
		}
		got, err := DecodeSignal(b)
		if err != nil {
			return false
		}
		return got.Op == s.Op && got.ID == s.ID && got.Host == s.Host && got.Set.Equal(s.Set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// FuzzDecodeSignal: the decoder must never panic and accepted inputs must
// re-encode.
func FuzzDecodeSignal(f *testing.F) {
	seed, _ := EncodeSignal(Signal{Op: "subscribe", ID: "s", Host: 3, Set: dz.NewSet("10")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{Version, opSubscribe, 1, 'x'})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSignal(b)
		if err != nil {
			return
		}
		if _, err := EncodeSignal(s); err != nil {
			t.Fatalf("decoded signal does not re-encode: %+v: %v", s, err)
		}
	})
}

// FuzzDecodeEvent: same for event payloads.
func FuzzDecodeEvent(f *testing.F) {
	seed, _ := EncodeEvent(space.Event{Values: []uint32{1, 2}})
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, err := DecodeEvent(b)
		if err != nil {
			return
		}
		if _, err := EncodeEvent(ev); err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
	})
}
