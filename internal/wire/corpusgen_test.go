package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/space"
)

// TestGenFuzzCorpus regenerates the seed corpora under testdata/fuzz when
// PLEROMA_GEN_CORPUS=1. Normally a no-op.
func TestGenFuzzCorpus(t *testing.T) {
	if os.Getenv("PLEROMA_GEN_CORPUS") == "" {
		t.Skip("set PLEROMA_GEN_CORPUS=1 to regenerate")
	}
	write := func(fuzzName, seedName string, b []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustFlow := func(expr string, prio int, port int) openflow.Flow {
		fl, err := openflow.NewFlow(dz.Expr(expr), prio, openflow.Action{OutPort: openflow.PortID(port)})
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}

	// FuzzDecodeFrame
	fr, _ := AppendFrame(nil, Frame{Kind: KindControl, Corr: 7, Payload: []byte{1, 2, 3}})
	write("FuzzDecodeFrame", "seed-control", fr)
	fr2, _ := AppendFrame(nil, Frame{Kind: KindRun, Corr: 1})
	write("FuzzDecodeFrame", "seed-empty-payload", fr2)
	write("FuzzDecodeFrame", "seed-truncated", fr[:len(fr)-2])
	write("FuzzDecodeFrame", "seed-oversize-len", []byte{0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0})

	// FuzzDecodeControlReq
	cr, _ := EncodeControlReq(ControlReq{Op: "subscribe", ID: "s1", Host: 3,
		Ranges: []Range{{Attr: "x", Lo: 0, Hi: 99}, {Attr: "y", Lo: 1, Hi: 5}}})
	write("FuzzDecodeControlReq", "seed-subscribe", cr)
	cr2, _ := EncodeControlReq(ControlReq{Op: "unadvertise", ID: "p", Host: 0})
	write("FuzzDecodeControlReq", "seed-norange", cr2)
	write("FuzzDecodeControlReq", "seed-garbage", append(append([]byte{}, cr2...), 0xee))

	// FuzzDecodePublish
	pb, _ := EncodePublish(PublishReq{ID: "p1", Events: []space.Event{
		{Values: []uint32{1, 2}}, {Values: []uint32{3, 4}},
	}})
	write("FuzzDecodePublish", "seed-two-events", pb)
	write("FuzzDecodePublish", "seed-truncated", pb[:len(pb)-3])
	pbt, _ := EncodePublish(PublishReq{ID: "p1", Seq: 3,
		Trace:  TraceContext{TraceID: 0x1111, SpanID: 0x22, PubWallNanos: 0x333333},
		Events: []space.Event{{Values: []uint32{1, 2}}}})
	write("FuzzDecodePublish", "seed-traced", pbt)

	// FuzzDecodeDelivery
	dv, _ := EncodeDelivery(Delivery{SubscriptionID: "s", Event: space.Event{Values: []uint32{9, 10}},
		At: 5, Latency: 2, FalsePositive: true})
	write("FuzzDecodeDelivery", "seed-fp", dv)
	dvt, _ := EncodeDelivery(Delivery{SubscriptionID: "s", Event: space.Event{Values: []uint32{9, 10}},
		At: 5, Latency: 2, Trace: TraceContext{TraceID: 7, SpanID: 9, PubWallNanos: 11}, Hops: 4})
	write("FuzzDecodeDelivery", "seed-traced", dvt)

	// FuzzDecodePublish: a coalesced multi-event batch like the pipelined
	// client packs.
	evs := make([]space.Event, 8)
	for i := range evs {
		evs[i] = space.Event{Values: []uint32{uint32(i), uint32(i * 3)}}
	}
	pbm, _ := EncodePublish(PublishReq{ID: "pipe", Seq: 9, Events: evs})
	write("FuzzDecodePublish", "seed-coalesced", pbm)

	// FuzzDecodeDeliverBatch
	db, _ := EncodeDeliverBatch([]Delivery{
		{SubscriptionID: "s1", Event: space.Event{Values: []uint32{1, 2}}, At: 3, Latency: 1},
		{SubscriptionID: "s2", Event: space.Event{Values: []uint32{4}}, At: 5, Latency: 2, FalsePositive: true},
	})
	write("FuzzDecodeDeliverBatch", "seed-two", db)
	dbt, _ := EncodeDeliverBatch([]Delivery{
		{SubscriptionID: "s", Event: space.Event{Values: []uint32{9}},
			Trace: TraceContext{TraceID: 7, SpanID: 9, PubWallNanos: 11}, Hops: 2},
	})
	write("FuzzDecodeDeliverBatch", "seed-traced", dbt)
	write("FuzzDecodeDeliverBatch", "seed-truncated", db[:len(db)-3])

	// FuzzDecodeFlowBatch
	fl := mustFlow("0101", 4, 2)
	fl.ID = 11
	fb, _ := EncodeFlowBatch(FlowBatch{Switch: 3, Ops: []openflow.FlowOp{
		openflow.AddOp(fl), openflow.DeleteOp(7),
		openflow.ModifyOp(7, 2, []openflow.Action{{OutPort: 4}}),
	}})
	write("FuzzDecodeFlowBatch", "seed-mixed-ops", fb)
	write("FuzzDecodeFlowBatch", "seed-truncated", fb[:len(fb)/2])

	// FuzzDecodeFlowList
	fl2 := mustFlow("011", 3, 1)
	fl2.ID = 5
	lst, _ := EncodeFlowList(FlowList{Flows: []openflow.Flow{fl2}})
	write("FuzzDecodeFlowList", "seed-one-flow", lst)

	// FuzzFrameStream
	var stream []byte
	for i, k := range []Kind{KindRun, KindRunDone, KindSync} {
		pl := []byte(nil)
		if k == KindRunDone {
			pl = EncodeU64(12345)
		}
		stream, _ = AppendFrame(stream, Frame{Kind: k, Corr: uint64(i + 1), Payload: pl})
	}
	write("FuzzFrameStream", "seed-three-frames", stream)
	write("FuzzFrameStream", "seed-split-frame", stream[:len(stream)-5])
	fmt.Println("corpus regenerated")
}
