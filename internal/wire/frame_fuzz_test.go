package wire

import (
	"bytes"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/space"
)

// The codec fuzzers feed raw bytes to every transport decoder: none may
// panic, and any input a decoder accepts must re-encode to the exact same
// bytes (the decoders reject trailing garbage and non-canonical forms, so
// encode∘decode is the identity on accepted inputs). Seed corpora live
// under testdata/fuzz/<FuzzName>/ like the dz trie fuzzers'.

func fuzzFlow(f *testing.F, expr string, prio int, port int) openflow.Flow {
	fl, err := openflow.NewFlow(dz.Expr(expr), prio, openflow.Action{OutPort: openflow.PortID(port)})
	if err != nil {
		f.Fatal(err)
	}
	return fl
}

func FuzzDecodeFrame(f *testing.F) {
	seed, _ := AppendFrame(nil, Frame{Kind: KindControl, Corr: 7, Payload: []byte{1, 2, 3}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, rest, err := DecodeFrame(b)
		if err != nil {
			return
		}
		reenc, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b[:len(b)-len(rest)]) {
			t.Fatalf("frame re-encoding drifted")
		}
		// The io path must agree with the slice path.
		fr2, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadFrame rejected what DecodeFrame accepted: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Corr != fr.Corr || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("ReadFrame and DecodeFrame disagree")
		}
	})
}

func FuzzDecodeControlReq(f *testing.F) {
	seed, _ := EncodeControlReq(ControlReq{
		Op: "subscribe", ID: "s1", Host: 3,
		Ranges: []Range{{Attr: "x", Lo: 0, Hi: 99}, {Attr: "y", Lo: 1, Hi: 5}},
	})
	f.Add(seed)
	seed2, _ := EncodeControlReq(ControlReq{Op: "unadvertise", ID: "p", Host: 0})
	f.Add(seed2)
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeControlReq(b)
		if err != nil {
			return
		}
		reenc, err := EncodeControlReq(req)
		if err != nil {
			t.Fatalf("decoded control request does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("control request re-encoding drifted:\n in  %x\n out %x", b, reenc)
		}
	})
}

func FuzzDecodePublish(f *testing.F) {
	good, _ := EncodePublish(PublishReq{ID: "p1", Events: []space.Event{
		{Values: []uint32{1, 2}},
		{Values: []uint32{3, 4}},
	}})
	f.Add(good)
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodePublish(b)
		if err != nil {
			return
		}
		reenc, err := EncodePublish(req)
		if err != nil {
			t.Fatalf("decoded publish does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("publish re-encoding drifted")
		}
	})
}

func FuzzDecodeDelivery(f *testing.F) {
	good, _ := EncodeDelivery(Delivery{
		SubscriptionID: "s",
		Event:          space.Event{Values: []uint32{9, 10}},
		At:             5, Latency: 2, FalsePositive: true,
	})
	f.Add(good)
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelivery(b)
		if err != nil {
			return
		}
		reenc, err := EncodeDelivery(d)
		if err != nil {
			t.Fatalf("decoded delivery does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("delivery re-encoding drifted")
		}
	})
}

func FuzzDecodeDeliverBatch(f *testing.F) {
	good, _ := EncodeDeliverBatch([]Delivery{
		{SubscriptionID: "s1", Event: space.Event{Values: []uint32{1, 2}}, At: 3, Latency: 1},
		{SubscriptionID: "s2", Event: space.Event{Values: []uint32{4}}, At: 5, Latency: 2, FalsePositive: true},
	})
	f.Add(good)
	traced, _ := EncodeDeliverBatch([]Delivery{
		{SubscriptionID: "s", Event: space.Event{Values: []uint32{9}},
			Trace: TraceContext{TraceID: 7, SpanID: 9, PubWallNanos: 11}, Hops: 2},
	})
	f.Add(traced)
	f.Fuzz(func(t *testing.T, b []byte) {
		ds, err := DecodeDeliverBatch(b)
		if err != nil {
			return
		}
		reenc, err := EncodeDeliverBatch(ds)
		if err != nil {
			t.Fatalf("decoded deliver batch does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("deliver batch re-encoding drifted:\n in  %x\n out %x", b, reenc)
		}
	})
}

func FuzzDecodeFlowBatch(f *testing.F) {
	fl := fuzzFlow(f, "0101", 4, 2)
	fl.ID = 11
	good, _ := EncodeFlowBatch(FlowBatch{Switch: 3, Ops: []openflow.FlowOp{
		openflow.AddOp(fl),
		openflow.DeleteOp(7),
		openflow.ModifyOp(7, 2, []openflow.Action{{OutPort: 4}}),
	}})
	f.Add(good)
	f.Fuzz(func(t *testing.T, b []byte) {
		fb, err := DecodeFlowBatch(b)
		if err != nil {
			return
		}
		reenc, err := EncodeFlowBatch(fb)
		if err != nil {
			t.Fatalf("decoded flow batch does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("flow batch re-encoding drifted")
		}
	})
}

func FuzzDecodeFlowList(f *testing.F) {
	fl := fuzzFlow(f, "011", 3, 1)
	fl.ID = 5
	good, _ := EncodeFlowList(FlowList{Flows: []openflow.Flow{fl}})
	f.Add(good)
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := DecodeFlowList(b)
		if err != nil {
			return
		}
		reenc, err := EncodeFlowList(l)
		if err != nil {
			t.Fatalf("decoded flow list does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, b) {
			t.Fatalf("flow list re-encoding drifted")
		}
	})
}

// FuzzFrameStream drives the streaming reader over arbitrary byte streams:
// ReadFrame must consume frames one at a time without panicking and stop
// cleanly at the first malformed or incomplete frame.
func FuzzFrameStream(f *testing.F) {
	var stream []byte
	for _, fr := range []Frame{
		{Kind: KindRun, Corr: 1},
		{Kind: KindRunDone, Corr: 1, Payload: EncodeU64(12345)},
		{Kind: KindSync, Corr: 2},
	} {
		stream, _ = AppendFrame(stream, fr)
	}
	f.Add(stream)
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		for i := 0; i < 1000; i++ {
			if _, err := ReadFrame(r); err != nil {
				return // EOF, truncation, or protocol error — all fine, as long as no panic
			}
		}
	})
}
