package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"pleroma/internal/dz"
)

// This file extends the wire codec with the control-op journal record: the
// unit of the controller's append-only log. A record captures one applied
// control operation together with its epoch (incremented at every
// failover) and sequence number (monotone within the journal), so a warm
// standby can replay snapshot + journal to the exact pre-crash state.

// Journal op names. The first four match the signalling ops; reconfigure
// records a RebuildTrees pass (topology change), which has no client id.
const (
	OpAdvertise   = "advertise"
	OpSubscribe   = "subscribe"
	OpUnsubscribe = "unsubscribe"
	OpUnadvertise = "unadvertise"
	OpReconfigure = "reconfigure"
)

// opReconfigure extends the signalling op codes; it is only valid in
// journal records, never in IP_vir signals.
const opReconfigure byte = 5

// Record is one journaled control operation.
type Record struct {
	// Epoch identifies the controller incarnation that applied the op.
	Epoch uint32
	// Seq is the record's position in the journal (monotone, 1-based).
	Seq uint64
	// Op is one of the Op* journal op names.
	Op string
	// ID is the client identifier; empty for reconfigure records.
	ID string
	// Node locates the client endpoint (host, or border switch for
	// virtual clients); zero for unsubscribe/unadvertise/reconfigure.
	Node uint32
	// ViaPort is the border exit port of a virtual client; zero for
	// regular clients.
	ViaPort uint32
	// Set is the operation's DZ set; nil for removals and reconfigure.
	Set dz.Set
}

func recOpCode(op string) (byte, error) {
	if op == OpReconfigure {
		return opReconfigure, nil
	}
	return opCode(op)
}

func recOpName(code byte) (string, error) {
	if code == opReconfigure {
		return OpReconfigure, nil
	}
	return opName(code)
}

// EncodeRecord renders a journal record:
//
//	[version u8][op u8][epoch u32][seq u64][idLen u8][id]
//	[node u32][viaPort u32][count u16][expr]×count
func EncodeRecord(r Record) ([]byte, error) {
	code, err := recOpCode(r.Op)
	if err != nil {
		return nil, err
	}
	if r.Op == OpReconfigure {
		if r.ID != "" {
			return nil, fmt.Errorf("wire: reconfigure record carries id %q", r.ID)
		}
	} else if len(r.ID) == 0 || len(r.ID) > MaxIDLen {
		return nil, fmt.Errorf("wire: record id length %d out of range 1..%d", len(r.ID), MaxIDLen)
	}
	if len(r.Set) > MaxSetMembers || len(r.Set) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: record DZ set of %d members exceeds %d", len(r.Set), MaxSetMembers)
	}
	buf := make([]byte, 0, 24+len(r.ID)+4*len(r.Set))
	buf = append(buf, Version, code)
	buf = binary.BigEndian.AppendUint32(buf, r.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, byte(len(r.ID)))
	buf = append(buf, r.ID...)
	buf = binary.BigEndian.AppendUint32(buf, r.Node)
	buf = binary.BigEndian.AppendUint32(buf, r.ViaPort)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Set)))
	for _, e := range r.Set {
		buf, err = packExpr(buf, e)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeRecord parses a journal record.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 15 {
		return Record{}, fmt.Errorf("wire: record too short (%d bytes)", len(b))
	}
	if b[0] != Version {
		return Record{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	op, err := recOpName(b[1])
	if err != nil {
		return Record{}, err
	}
	r := Record{
		Op:    op,
		Epoch: binary.BigEndian.Uint32(b[2:]),
		Seq:   binary.BigEndian.Uint64(b[6:]),
	}
	idLen := int(b[14])
	rest := b[15:]
	if len(rest) < idLen+10 {
		return Record{}, fmt.Errorf("wire: truncated record id/header")
	}
	if op == OpReconfigure && idLen != 0 {
		return Record{}, fmt.Errorf("wire: reconfigure record carries an id")
	}
	if op != OpReconfigure && idLen == 0 {
		return Record{}, fmt.Errorf("wire: %s record without id", op)
	}
	r.ID = string(rest[:idLen])
	rest = rest[idLen:]
	r.Node = binary.BigEndian.Uint32(rest)
	r.ViaPort = binary.BigEndian.Uint32(rest[4:])
	count := int(binary.BigEndian.Uint16(rest[8:]))
	rest = rest[10:]
	if count > MaxSetMembers {
		return Record{}, fmt.Errorf("wire: record DZ set of %d members exceeds %d", count, MaxSetMembers)
	}
	exprs := make([]dz.Expr, 0, count)
	for i := 0; i < count; i++ {
		var e dz.Expr
		e, rest, err = unpackExpr(rest)
		if err != nil {
			return Record{}, err
		}
		exprs = append(exprs, e)
	}
	if len(rest) != 0 {
		return Record{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	if count > 0 {
		r.Set = dz.NewSet(exprs...)
	}
	return r, nil
}

// AppendExpr appends one dz-expression in packed wire form
// ([len u8][bits MSB-first]); the snapshot codec shares this encoding.
func AppendExpr(buf []byte, e dz.Expr) ([]byte, error) {
	return packExpr(buf, e)
}

// ReadExpr decodes one packed expression, returning it and the remainder.
func ReadExpr(b []byte) (dz.Expr, []byte, error) {
	return unpackExpr(b)
}

// AppendSet appends a DZ set as [count u16][expr]×count. Members are
// written in the set's (canonical, sorted) order, so equal sets encode to
// equal bytes.
func AppendSet(buf []byte, s dz.Set) ([]byte, error) {
	if len(s) > MaxSetMembers || len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: DZ set of %d members exceeds %d", len(s), MaxSetMembers)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	var err error
	for _, e := range s {
		buf, err = packExpr(buf, e)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadSet decodes a DZ set written by AppendSet, returning it and the
// remainder. An empty count yields a nil set, so encode(decode(b)) is
// byte-identical.
func ReadSet(b []byte) (dz.Set, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("wire: truncated DZ set header")
	}
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if count > MaxSetMembers {
		return nil, nil, fmt.Errorf("wire: DZ set of %d members exceeds %d", count, MaxSetMembers)
	}
	if count == 0 {
		return nil, b, nil
	}
	exprs := make([]dz.Expr, 0, count)
	for i := 0; i < count; i++ {
		var (
			e   dz.Expr
			err error
		)
		e, b, err = unpackExpr(b)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
	}
	return dz.NewSet(exprs...), b, nil
}
