package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"pleroma/internal/openflow"
	"pleroma/internal/space"
)

// This file defines the transport framing and the request/response payload
// codecs of the networked deployment mode (internal/transport): every
// message between a pleroma-d daemon and its clients — control requests,
// publications, deliveries, FlowMod batches for the remote southbound, and
// state-digest queries — travels as one length-prefixed frame carrying a
// kind byte and a request/response correlation id. Like the rest of the
// package, every decoder is total: truncation, oversize headers, and
// trailing garbage are errors, never panics.

// Kind discriminates the frame types of the transport protocol.
type Kind uint8

// Frame kinds. Request kinds expect a response frame bearing the same
// correlation id; KindDeliver and KindGoodbye are server pushes with
// correlation id zero.
const (
	// KindHello opens a session (payload: Hello). Response: KindHelloOK.
	KindHello Kind = iota + 1
	// KindHelloOK acknowledges a Hello (payload: HelloOK).
	KindHelloOK
	// KindOK is the empty success response.
	KindOK
	// KindError is the failure response (payload: UTF-8 message).
	KindError
	// KindControl carries a control request (payload: ControlReq).
	// Response: KindOK or KindError.
	KindControl
	// KindPublish injects events (payload: PublishReq). Response: KindOK
	// or KindError.
	KindPublish
	// KindRun drains the daemon's simulated network (empty payload).
	// Response: KindRunDone.
	KindRun
	// KindRunDone reports the simulated clock after a drain (payload:
	// now u64 nanoseconds).
	KindRunDone
	// KindSync is an ordering barrier (empty payload): its KindOK response
	// is queued behind every delivery enqueued before the barrier was
	// processed, so a client that received the response has received every
	// prior delivery.
	KindSync
	// KindDeliver pushes one event delivery to a subscriber (payload:
	// Delivery). No response.
	KindDeliver
	// KindFlowBatch applies a FlowMod batch to one switch (payload:
	// FlowBatch). Response: KindFlowResult.
	KindFlowBatch
	// KindFlowResult reports the applied prefix of a batch (payload:
	// FlowResult).
	KindFlowResult
	// KindFlowRead reads a switch's installed flows (payload: sw u32).
	// Response: KindFlowList or KindError.
	KindFlowRead
	// KindFlowList returns installed flows (payload: FlowList).
	KindFlowList
	// KindDigest requests a partition state digest (payload: partition
	// u32). Response: KindDigestResult or KindError.
	KindDigest
	// KindDigestResult returns a partition state digest (payload: 32
	// bytes).
	KindDigestResult
	// KindGoodbye announces a graceful server shutdown (empty payload).
	// No response; the server closes the connection after flushing it.
	KindGoodbye
	// KindDeliverBatch pushes a coalesced run of deliveries to a
	// subscriber in one frame (payload: DeliverBatch). No response. Sent
	// only on sessions that negotiated FlagBatching.
	KindDeliverBatch
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloOK:
		return "hello-ok"
	case KindOK:
		return "ok"
	case KindError:
		return "error"
	case KindControl:
		return "control"
	case KindPublish:
		return "publish"
	case KindRun:
		return "run"
	case KindRunDone:
		return "run-done"
	case KindSync:
		return "sync"
	case KindDeliver:
		return "deliver"
	case KindFlowBatch:
		return "flow-batch"
	case KindFlowResult:
		return "flow-result"
	case KindFlowRead:
		return "flow-read"
	case KindFlowList:
		return "flow-list"
	case KindDigest:
		return "digest"
	case KindDigestResult:
		return "digest-result"
	case KindGoodbye:
		return "goodbye"
	case KindDeliverBatch:
		return "deliver-batch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// valid reports whether k is a defined frame kind.
func (k Kind) valid() bool { return k >= KindHello && k <= KindDeliverBatch }

// Valid reports whether k is a defined frame kind — the exported form for
// callers that frame payloads themselves (transport's copy-free writer).
func (k Kind) Valid() bool { return k.valid() }

// Framing limits.
const (
	// MaxFramePayload bounds one frame's payload.
	MaxFramePayload = 1 << 20
	// FrameHeaderLen is the fixed prefix: [length u32][kind u8][corr u64].
	FrameHeaderLen = 4 + 1 + 8
	// MaxFlowOps bounds the operations of one FlowMod batch.
	MaxFlowOps = 4096
	// MaxEvents bounds the events of one publish request.
	MaxEvents = 4096
	// MaxDeliveries bounds the deliveries of one KindDeliverBatch frame.
	MaxDeliveries = 4096
	// MaxActions bounds a flow's instruction set on the wire.
	MaxActions = 255
)

// Frame is one transport message: a kind, a request/response correlation
// id (zero for unsolicited pushes), and an opaque payload whose format the
// kind selects.
type Frame struct {
	Kind    Kind
	Corr    uint64
	Payload []byte
}

// AppendFrame appends the encoded frame:
//
//	[length u32][kind u8][corr u64][payload]
//
// where length counts kind+corr+payload (i.e. FrameHeaderLen-4+len(payload)).
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if !f.Kind.valid() {
		return nil, fmt.Errorf("wire: invalid frame kind %d", uint8(f.Kind))
	}
	if len(f.Payload) > MaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload of %d bytes exceeds %d", len(f.Payload), MaxFramePayload)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(9+len(f.Payload)))
	dst = append(dst, byte(f.Kind))
	dst = binary.BigEndian.AppendUint64(dst, f.Corr)
	return append(dst, f.Payload...), nil
}

// DecodeFrame parses one frame from the front of b, returning it and the
// remainder. io.ErrUnexpectedEOF signals an incomplete frame (more bytes
// needed); every other error is a protocol violation.
func DecodeFrame(b []byte) (Frame, []byte, error) {
	if len(b) < FrameHeaderLen {
		return Frame{}, b, io.ErrUnexpectedEOF
	}
	length := binary.BigEndian.Uint32(b)
	if length < 9 || length > 9+MaxFramePayload {
		return Frame{}, b, fmt.Errorf("wire: frame length %d out of range", length)
	}
	kind := Kind(b[4])
	if !kind.valid() {
		return Frame{}, b, fmt.Errorf("wire: invalid frame kind %d", b[4])
	}
	if len(b) < 4+int(length) {
		return Frame{}, b, io.ErrUnexpectedEOF
	}
	f := Frame{
		Kind:    kind,
		Corr:    binary.BigEndian.Uint64(b[5:]),
		Payload: b[FrameHeaderLen : 4+length],
	}
	return f, b[4+length:], nil
}

// ReadFrame reads one frame from r. The payload is freshly allocated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < 9 || length > 9+MaxFramePayload {
		return Frame{}, fmt.Errorf("wire: frame length %d out of range", length)
	}
	kind := Kind(hdr[4])
	if !kind.valid() {
		return Frame{}, fmt.Errorf("wire: invalid frame kind %d", hdr[4])
	}
	payload := make([]byte, length-9)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Kind: kind, Corr: binary.BigEndian.Uint64(hdr[5:]), Payload: payload}, nil
}

// ReadFrameBuf reads one frame from r, reusing buf for the payload when it
// has the capacity (growing it otherwise). The returned frame's Payload
// aliases the returned buffer, so it is valid only until the next
// ReadFrameBuf call with the same buffer — callers that retain a payload
// must copy it. This is the zero-allocation steady-state read path; use
// ReadFrame when the payload must outlive the next read.
func ReadFrameBuf(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < 9 || length > 9+MaxFramePayload {
		return Frame{}, buf, fmt.Errorf("wire: frame length %d out of range", length)
	}
	kind := Kind(hdr[4])
	if !kind.valid() {
		return Frame{}, buf, fmt.Errorf("wire: invalid frame kind %d", hdr[4])
	}
	n := int(length - 9)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	return Frame{Kind: kind, Corr: binary.BigEndian.Uint64(hdr[5:]), Payload: payload}, buf[:cap(buf)], nil
}

// appendString appends [len u8][bytes]; ids and attribute names share it.
func appendString(dst []byte, s string, what string) ([]byte, error) {
	if len(s) > MaxIDLen {
		return nil, fmt.Errorf("wire: %s length %d exceeds %d", what, len(s), MaxIDLen)
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...), nil
}

// readString reads one [len u8][bytes] string, returning the remainder.
func readString(b []byte, what string) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, fmt.Errorf("wire: truncated %s header", what)
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", nil, fmt.Errorf("wire: truncated %s body", what)
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}

// TraceContext is the compact distributed-trace context carried on
// trace-bearing (Version2) PublishReq and Delivery payloads: the trace
// identity minted by the publishing client, the sender-side span the
// receiver should parent its own span to, and the publisher's wall-clock
// publish instant for cross-process latency accounting. The zero
// TraceContext means "untraced" and encodes as the Version-1 payload, so
// peers that never negotiated tracing see exactly the frames they always
// did.
type TraceContext struct {
	// TraceID identifies the end-to-end trace; 0 means untraced.
	TraceID uint64
	// SpanID is the sender-side span the receiver parents to.
	SpanID uint64
	// PubWallNanos is the publisher's wall clock at publish time (Unix
	// nanoseconds). It is meaningful only within the publishing process's
	// clock domain: a receiver on another machine comparing it against its
	// own clock measures latency plus clock skew.
	PubWallNanos int64
}

// Valid reports whether tc carries a minted trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// appendTrace appends [traceID u64][spanID u64][pubWall i64].
func appendTrace(dst []byte, tc TraceContext) []byte {
	dst = binary.BigEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, tc.SpanID)
	return binary.BigEndian.AppendUint64(dst, uint64(tc.PubWallNanos))
}

// readTrace reads one appendTrace payload, returning the remainder. A
// Version2 payload must carry a minted trace id: the zero TraceContext has
// a canonical Version-1 encoding, and admitting it here too would break
// the decode∘encode identity the fuzzers enforce.
func readTrace(b []byte, what string) (TraceContext, []byte, error) {
	if len(b) < 24 {
		return TraceContext{}, nil, fmt.Errorf("wire: truncated %s trace context", what)
	}
	tc := TraceContext{
		TraceID:      binary.BigEndian.Uint64(b),
		SpanID:       binary.BigEndian.Uint64(b[8:]),
		PubWallNanos: int64(binary.BigEndian.Uint64(b[16:])),
	}
	if !tc.Valid() {
		return TraceContext{}, nil, fmt.Errorf("wire: %s trace context without trace id", what)
	}
	return tc, b[24:], nil
}

// appendFlags appends the optional capability byte: nothing when flags are
// zero, so capability-free messages stay bytewise identical to the
// pre-flags format (and old decoders keep accepting them).
func appendFlags(dst []byte, flags uint8) []byte {
	if flags != 0 {
		dst = append(dst, flags)
	}
	return dst
}

// readFlags consumes the optional trailing capability byte. Absent means
// zero; a present-but-zero byte is rejected as non-canonical (zero flags
// encode as absence).
func readFlags(rest []byte, what string) (uint8, error) {
	switch {
	case len(rest) == 0:
		return 0, nil
	case len(rest) > 1:
		return 0, fmt.Errorf("wire: %d trailing bytes", len(rest))
	case rest[0] == 0:
		return 0, fmt.Errorf("wire: non-canonical zero %s flags byte", what)
	default:
		return rest[0], nil
	}
}

// Hello opens a client session.
type Hello struct {
	// ID names the client (for diagnostics; uniqueness is not required).
	ID string
	// Flags advertises optional capabilities (FlagTracing).
	Flags uint8
}

// EncodeHello renders a session-open request:
//
//	[version u8][idLen u8][id][flags u8]?
//
// The flags byte is appended only when nonzero.
func EncodeHello(h Hello) ([]byte, error) {
	if len(h.ID) == 0 {
		return nil, fmt.Errorf("wire: hello requires a client id")
	}
	buf := make([]byte, 0, 3+len(h.ID))
	buf = append(buf, Version)
	buf, err := appendString(buf, h.ID, "hello id")
	if err != nil {
		return nil, err
	}
	return appendFlags(buf, h.Flags), nil
}

// DecodeHello parses a session-open request.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < 1 {
		return Hello{}, fmt.Errorf("wire: hello too short")
	}
	if b[0] != Version {
		return Hello{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	id, rest, err := readString(b[1:], "hello id")
	if err != nil {
		return Hello{}, err
	}
	if len(id) == 0 {
		return Hello{}, fmt.Errorf("wire: hello without client id")
	}
	flags, err := readFlags(rest, "hello")
	if err != nil {
		return Hello{}, err
	}
	return Hello{ID: id, Flags: flags}, nil
}

// HelloOK is the server's session acknowledgement: the deployment's host
// nodes and partition ids, so thin clients need no out-of-band topology
// knowledge.
type HelloOK struct {
	Hosts      []uint32
	Partitions []int32
	// Flags echoes the capability intersection the server accepted
	// (FlagTracing); the client must not send Version2 payloads unless the
	// corresponding bit came back set.
	Flags uint8
}

// EncodeHelloOK renders a session acknowledgement:
//
//	[version u8][nhosts u16][host u32]×[nparts u16][part u32]×[flags u8]?
//
// The flags byte is appended only when nonzero.
func EncodeHelloOK(h HelloOK) ([]byte, error) {
	if len(h.Hosts) > 0xffff || len(h.Partitions) > 0xffff {
		return nil, fmt.Errorf("wire: hello-ok with %d hosts / %d partitions", len(h.Hosts), len(h.Partitions))
	}
	buf := make([]byte, 0, 6+4*len(h.Hosts)+4*len(h.Partitions))
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Hosts)))
	for _, hh := range h.Hosts {
		buf = binary.BigEndian.AppendUint32(buf, hh)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Partitions)))
	for _, p := range h.Partitions {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	return appendFlags(buf, h.Flags), nil
}

// DecodeHelloOK parses a session acknowledgement.
func DecodeHelloOK(b []byte) (HelloOK, error) {
	if len(b) < 3 {
		return HelloOK{}, fmt.Errorf("wire: hello-ok too short")
	}
	if b[0] != Version {
		return HelloOK{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	nh := int(binary.BigEndian.Uint16(b[1:]))
	rest := b[3:]
	if len(rest) < 4*nh+2 {
		return HelloOK{}, fmt.Errorf("wire: truncated hello-ok hosts")
	}
	var out HelloOK
	for i := 0; i < nh; i++ {
		out.Hosts = append(out.Hosts, binary.BigEndian.Uint32(rest[4*i:]))
	}
	rest = rest[4*nh:]
	np := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < 4*np {
		return HelloOK{}, fmt.Errorf("wire: truncated hello-ok partitions")
	}
	for i := 0; i < np; i++ {
		out.Partitions = append(out.Partitions, int32(binary.BigEndian.Uint32(rest[4*i:])))
	}
	flags, err := readFlags(rest[4*np:], "hello-ok")
	if err != nil {
		return HelloOK{}, err
	}
	out.Flags = flags
	return out, nil
}

// Range is one attribute constraint of a remote control request. Remote
// clients express subscriptions and advertisements as attribute ranges —
// the dz decomposition happens at the daemon, which owns the schema and
// the active dimension selection.
type Range struct {
	Attr   string
	Lo, Hi uint32
}

// ControlReq is a remote control request: one of the four signalling ops,
// expressed content-side (attribute ranges) rather than dz-side.
type ControlReq struct {
	Op   string // "advertise" | "subscribe" | "unsubscribe" | "unadvertise"
	ID   string
	Host uint32
	// Ranges constrains attributes; empty means the whole event space.
	// Encoding sorts by attribute name, so equal filters encode equally.
	Ranges []Range
}

// EncodeControlReq renders a remote control request:
//
//	[version u8][op u8][idLen u8][id][host u32]
//	[nranges u8]([attrLen u8][attr][lo u32][hi u32])×
func EncodeControlReq(req ControlReq) ([]byte, error) {
	code, err := opCode(req.Op)
	if err != nil {
		return nil, err
	}
	if len(req.ID) == 0 || len(req.ID) > MaxIDLen {
		return nil, fmt.Errorf("wire: id length %d out of range 1..%d", len(req.ID), MaxIDLen)
	}
	if len(req.Ranges) > MaxDims {
		return nil, fmt.Errorf("wire: %d range constraints exceed %d", len(req.Ranges), MaxDims)
	}
	ranges := append([]Range(nil), req.Ranges...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Attr < ranges[j].Attr })
	buf := make([]byte, 0, 16+len(req.ID)+12*len(ranges))
	buf = append(buf, Version, code)
	buf, err = appendString(buf, req.ID, "control id")
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, req.Host)
	buf = append(buf, byte(len(ranges)))
	for _, r := range ranges {
		if len(r.Attr) == 0 {
			return nil, fmt.Errorf("wire: range constraint without attribute name")
		}
		buf, err = appendString(buf, r.Attr, "attribute name")
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, r.Lo)
		buf = binary.BigEndian.AppendUint32(buf, r.Hi)
	}
	return buf, nil
}

// DecodeControlReq parses a remote control request.
func DecodeControlReq(b []byte) (ControlReq, error) {
	if len(b) < 2 {
		return ControlReq{}, fmt.Errorf("wire: control request too short")
	}
	if b[0] != Version {
		return ControlReq{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	op, err := opName(b[1])
	if err != nil {
		return ControlReq{}, err
	}
	id, rest, err := readString(b[2:], "control id")
	if err != nil {
		return ControlReq{}, err
	}
	if len(id) == 0 {
		return ControlReq{}, fmt.Errorf("wire: control request without id")
	}
	if len(rest) < 5 {
		return ControlReq{}, fmt.Errorf("wire: truncated control header")
	}
	req := ControlReq{Op: op, ID: id, Host: binary.BigEndian.Uint32(rest)}
	n := int(rest[4])
	rest = rest[5:]
	if n > MaxDims {
		return ControlReq{}, fmt.Errorf("wire: %d range constraints exceed %d", n, MaxDims)
	}
	prev := ""
	for i := 0; i < n; i++ {
		var attr string
		attr, rest, err = readString(rest, "attribute name")
		if err != nil {
			return ControlReq{}, err
		}
		if len(attr) == 0 {
			return ControlReq{}, fmt.Errorf("wire: range constraint without attribute name")
		}
		if i > 0 && attr <= prev {
			return ControlReq{}, fmt.Errorf("wire: range constraints not sorted (%q after %q)", attr, prev)
		}
		prev = attr
		if len(rest) < 8 {
			return ControlReq{}, fmt.Errorf("wire: truncated range constraint")
		}
		req.Ranges = append(req.Ranges, Range{
			Attr: attr,
			Lo:   binary.BigEndian.Uint32(rest),
			Hi:   binary.BigEndian.Uint32(rest[4:]),
		})
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return ControlReq{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return req, nil
}

// PublishReq injects events through a registered publisher. Seq is the
// client-assigned publish sequence number (0 = unsequenced): a transport
// retry re-sends the same Seq, letting the server skip a publish it
// already applied (at-most-once application under at-least-once retry).
type PublishReq struct {
	ID     string
	Seq    uint64
	Events []space.Event
	// Trace is the distributed-trace context stamped by the client. The
	// zero value means untraced and selects the Version-1 encoding; a
	// minted trace selects Version2. A transport retry re-encodes nothing
	// (the same bytes are re-sent), so Seq and Trace survive retries
	// unchanged and a dedup'd publish keeps a single trace id.
	Trace TraceContext
}

// EncodePublish renders a publish request:
//
//	[version u8][trace 24B]?[seq u64][idLen u8][id][count u16][event]×
//
// where each event is an EncodeEvent payload (self-delimiting via its dims
// byte). The trace block is present exactly when the version byte is
// Version2 (req.Trace minted).
func EncodePublish(req PublishReq) ([]byte, error) {
	return AppendPublish(make([]byte, 0, 40+len(req.ID)+len(req.Events)*6), req)
}

// AppendPublish appends an EncodePublish payload to dst, allocation-free
// when dst has capacity — the form the pipelined publish path encodes
// coalesced batches with.
func AppendPublish(dst []byte, req PublishReq) ([]byte, error) {
	if len(req.ID) == 0 {
		return nil, fmt.Errorf("wire: publish without publisher id")
	}
	if len(req.Events) == 0 || len(req.Events) > MaxEvents {
		return nil, fmt.Errorf("wire: publish with %d events, want 1..%d", len(req.Events), MaxEvents)
	}
	if req.Trace.Valid() {
		dst = append(dst, Version2)
		dst = appendTrace(dst, req.Trace)
	} else {
		dst = append(dst, Version)
	}
	dst = binary.BigEndian.AppendUint64(dst, req.Seq)
	var err error
	dst, err = appendString(dst, req.ID, "publisher id")
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Events)))
	for _, ev := range req.Events {
		dst, err = appendEvent(dst, ev)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// readEvent decodes one embedded EncodeEvent payload, returning the rest.
// The event's values are appended to arena so a batch decoder amortizes
// one backing array across every event of a frame (nil arena allocates
// per event, matching DecodeEvent); the returned event's Values slice is
// capacity-clipped, so growing the arena afterwards never aliases it.
func readEvent(b []byte, arena []uint32) (space.Event, []byte, []uint32, error) {
	if len(b) < 2 {
		return space.Event{}, nil, arena, fmt.Errorf("wire: truncated event")
	}
	if b[0] != Version {
		return space.Event{}, nil, arena, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	dims := int(b[1])
	if dims == 0 || dims > MaxDims {
		return space.Event{}, nil, arena, fmt.Errorf("wire: event dims %d out of range", dims)
	}
	n := 2 + 4*dims
	if len(b) < n {
		return space.Event{}, nil, arena, fmt.Errorf("wire: truncated event body")
	}
	base := len(arena)
	for i := 0; i < dims; i++ {
		arena = append(arena, binary.BigEndian.Uint32(b[2+4*i:]))
	}
	return space.Event{Values: arena[base:len(arena):len(arena)]}, b[n:], arena, nil
}

// DecodePublish parses a publish request (Version or Version2).
func DecodePublish(b []byte) (PublishReq, error) {
	if len(b) < 1 {
		return PublishReq{}, fmt.Errorf("wire: publish too short")
	}
	var trace TraceContext
	body := b[1:]
	switch b[0] {
	case Version:
	case Version2:
		var err error
		trace, body, err = readTrace(body, "publish")
		if err != nil {
			return PublishReq{}, err
		}
	default:
		return PublishReq{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	if len(body) < 8 {
		return PublishReq{}, fmt.Errorf("wire: publish too short")
	}
	seq := binary.BigEndian.Uint64(body)
	id, rest, err := readString(body[8:], "publisher id")
	if err != nil {
		return PublishReq{}, err
	}
	if len(id) == 0 {
		return PublishReq{}, fmt.Errorf("wire: publish without publisher id")
	}
	if len(rest) < 2 {
		return PublishReq{}, fmt.Errorf("wire: truncated publish header")
	}
	count := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if count == 0 || count > MaxEvents {
		return PublishReq{}, fmt.Errorf("wire: publish with %d events, want 1..%d", count, MaxEvents)
	}
	req := PublishReq{ID: id, Seq: seq, Trace: trace, Events: make([]space.Event, 0, count)}
	// One values arena for the whole batch: a well-formed payload has
	// exactly (len(rest)-2*count)/4 values, so the per-event slices carve a
	// single allocation.
	arenaCap := (len(rest) - 2*count) / 4
	if arenaCap < 0 {
		arenaCap = 0
	}
	arena := make([]uint32, 0, arenaCap)
	for i := 0; i < count; i++ {
		var ev space.Event
		ev, rest, arena, err = readEvent(rest, arena)
		if err != nil {
			return PublishReq{}, err
		}
		req.Events = append(req.Events, ev)
	}
	if len(rest) != 0 {
		return PublishReq{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return req, nil
}

// Delivery is one event handed to a remote subscriber.
type Delivery struct {
	SubscriptionID string
	Event          space.Event
	At             time.Duration
	Latency        time.Duration
	FalsePositive  bool
	// Trace is the distributed-trace context the event carried end to end;
	// the zero value (untraced) selects the Version-1 encoding.
	Trace TraceContext
	// Hops is the number of switch hops the event traversed; it travels
	// only on trace-bearing (Version2) deliveries.
	Hops uint16
}

// EncodeDelivery renders a delivery push:
//
//	[version u8][trace 24B][hops u16]?[idLen u8][id][at u64][latency u64][fp u8][event]
//
// The trace+hops block is present exactly when the version byte is
// Version2 (d.Trace minted); an untraced delivery encodes as Version 1 and
// drops Hops.
func EncodeDelivery(d Delivery) ([]byte, error) {
	return AppendDelivery(make([]byte, 0, 48+len(d.SubscriptionID)+4*len(d.Event.Values)), d)
}

// AppendDelivery appends an EncodeDelivery payload to dst, allocation-free
// when dst has capacity. The encoding is self-delimiting (the id is
// length-prefixed and the event carries its dims byte), which is what lets
// DeliverBatch concatenate delivery bodies back to back.
func AppendDelivery(dst []byte, d Delivery) ([]byte, error) {
	if len(d.SubscriptionID) == 0 {
		return nil, fmt.Errorf("wire: delivery without subscription id")
	}
	var err error
	if d.Trace.Valid() {
		dst = append(dst, Version2)
		dst = appendTrace(dst, d.Trace)
		dst = binary.BigEndian.AppendUint16(dst, d.Hops)
	} else {
		dst = append(dst, Version)
	}
	dst, err = appendString(dst, d.SubscriptionID, "subscription id")
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(d.At))
	dst = binary.BigEndian.AppendUint64(dst, uint64(d.Latency))
	if d.FalsePositive {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return appendEvent(dst, d.Event)
}

// readDelivery decodes one delivery body from the front of b, returning it
// and the remainder — the element decoder DeliverBatch iterates. Event
// values are appended to arena (see readEvent).
func readDelivery(b []byte, arena []uint32) (Delivery, []byte, []uint32, error) {
	if len(b) < 1 {
		return Delivery{}, nil, arena, fmt.Errorf("wire: delivery too short")
	}
	var d Delivery
	body := b[1:]
	switch b[0] {
	case Version:
	case Version2:
		var err error
		d.Trace, body, err = readTrace(body, "delivery")
		if err != nil {
			return Delivery{}, nil, arena, err
		}
		if len(body) < 2 {
			return Delivery{}, nil, arena, fmt.Errorf("wire: truncated delivery hops")
		}
		d.Hops = binary.BigEndian.Uint16(body)
		body = body[2:]
	default:
		return Delivery{}, nil, arena, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	id, rest, err := readString(body, "subscription id")
	if err != nil {
		return Delivery{}, nil, arena, err
	}
	if len(id) == 0 {
		return Delivery{}, nil, arena, fmt.Errorf("wire: delivery without subscription id")
	}
	if len(rest) < 17 {
		return Delivery{}, nil, arena, fmt.Errorf("wire: truncated delivery header")
	}
	if rest[16] > 1 {
		return Delivery{}, nil, arena, fmt.Errorf("wire: delivery false-positive flag %d", rest[16])
	}
	d.SubscriptionID = id
	d.At = time.Duration(binary.BigEndian.Uint64(rest))
	d.Latency = time.Duration(binary.BigEndian.Uint64(rest[8:]))
	d.FalsePositive = rest[16] == 1
	ev, rest, arena, err := readEvent(rest[17:], arena)
	if err != nil {
		return Delivery{}, nil, arena, err
	}
	d.Event = ev
	return d, rest, arena, nil
}

// DecodeDelivery parses a delivery push (Version or Version2).
func DecodeDelivery(b []byte) (Delivery, error) {
	d, rest, _, err := readDelivery(b, nil)
	if err != nil {
		return Delivery{}, err
	}
	if len(rest) != 0 {
		return Delivery{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return d, nil
}

// EncodeDeliverBatch renders a coalesced delivery push:
//
//	[version u8][count u16][delivery]×count
//
// where each delivery is an AppendDelivery body (self-delimiting, each
// carrying its own Version/Version2 byte). count must be 1..MaxDeliveries:
// an empty batch has no encoding — a quiet connection sends nothing, so
// the zero-batch case stays byte-exact with the v1 protocol by omission.
func EncodeDeliverBatch(ds []Delivery) ([]byte, error) {
	if len(ds) == 0 || len(ds) > MaxDeliveries {
		return nil, fmt.Errorf("wire: deliver batch with %d deliveries, want 1..%d", len(ds), MaxDeliveries)
	}
	buf, n, err := AppendDeliverBatch(nil, ds, MaxFramePayload)
	if err != nil {
		return nil, err
	}
	if n != len(ds) {
		return nil, fmt.Errorf("wire: deliver batch of %d deliveries exceeds %d payload bytes", len(ds), MaxFramePayload)
	}
	return buf, nil
}

// AppendDeliverBatch appends a DeliverBatch payload holding the longest
// prefix of ds that fits within maxBytes (always at least one delivery,
// never more than MaxDeliveries), returning the extended buffer and the
// number of deliveries consumed. Callers chunk a long delivery run into
// successive frames by re-calling with ds[n:].
func AppendDeliverBatch(dst []byte, ds []Delivery, maxBytes int) ([]byte, int, error) {
	if len(ds) == 0 {
		return nil, 0, fmt.Errorf("wire: empty deliver batch")
	}
	if maxBytes > MaxFramePayload {
		maxBytes = MaxFramePayload
	}
	base := len(dst)
	dst = append(dst, Version, 0, 0) // count patched below
	n := 0
	for _, d := range ds {
		if n == MaxDeliveries {
			break
		}
		prev := len(dst)
		var err error
		dst, err = AppendDelivery(dst, d)
		if err != nil {
			return nil, 0, err
		}
		if n > 0 && len(dst)-base > maxBytes {
			dst = dst[:prev]
			break
		}
		n++
	}
	binary.BigEndian.PutUint16(dst[base+1:], uint16(n))
	return dst, n, nil
}

// DecodeDeliverBatch parses a coalesced delivery push.
func DecodeDeliverBatch(b []byte) ([]Delivery, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("wire: deliver batch too short")
	}
	if b[0] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	count := int(binary.BigEndian.Uint16(b[1:]))
	if count == 0 || count > MaxDeliveries {
		return nil, fmt.Errorf("wire: deliver batch with %d deliveries, want 1..%d", count, MaxDeliveries)
	}
	rest := b[3:]
	ds := make([]Delivery, 0, count)
	// One backing array for every event's values in the batch: each
	// readEvent returns a capacity-clipped sub-slice, so arena growth
	// mid-batch can never alias an earlier event.
	arena := make([]uint32, 0, 4*count)
	var err error
	for i := 0; i < count; i++ {
		var d Delivery
		d, rest, arena, err = readDelivery(rest, arena)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return ds, nil
}

// appendActions appends [nact u8]([port u32][addrKind u8][addr]...)×.
func appendActions(buf []byte, actions []openflow.Action) ([]byte, error) {
	if len(actions) > MaxActions {
		return nil, fmt.Errorf("wire: %d actions exceed %d", len(actions), MaxActions)
	}
	buf = append(buf, byte(len(actions)))
	for _, a := range actions {
		buf = binary.BigEndian.AppendUint32(buf, uint32(a.OutPort))
		switch {
		case !a.SetDest.IsValid():
			buf = append(buf, 0)
		case a.SetDest.Is4():
			buf = append(buf, 4)
			v4 := a.SetDest.As4()
			buf = append(buf, v4[:]...)
		default:
			buf = append(buf, 6)
			v6 := a.SetDest.As16()
			buf = append(buf, v6[:]...)
		}
	}
	return buf, nil
}

// readActions decodes an instruction set written by appendActions.
func readActions(b []byte) ([]openflow.Action, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("wire: truncated action count")
	}
	n := int(b[0])
	b = b[1:]
	actions := make([]openflow.Action, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 5 {
			return nil, nil, fmt.Errorf("wire: truncated action")
		}
		a := openflow.Action{OutPort: openflow.PortID(binary.BigEndian.Uint32(b))}
		kind := b[4]
		b = b[5:]
		switch kind {
		case 0:
		case 4:
			if len(b) < 4 {
				return nil, nil, fmt.Errorf("wire: truncated IPv4 rewrite address")
			}
			a.SetDest = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		case 6:
			if len(b) < 16 {
				return nil, nil, fmt.Errorf("wire: truncated IPv6 rewrite address")
			}
			a.SetDest = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		default:
			return nil, nil, fmt.Errorf("wire: unknown rewrite address kind %d", kind)
		}
		actions = append(actions, a)
	}
	return actions, b, nil
}

// appendFlow appends [id u64][priority u32][expr][actions].
func appendFlow(buf []byte, f openflow.Flow) ([]byte, error) {
	if f.Priority < 0 {
		return nil, fmt.Errorf("wire: negative flow priority %d", f.Priority)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.ID))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Priority))
	var err error
	buf, err = packExpr(buf, f.Expr)
	if err != nil {
		return nil, err
	}
	return appendActions(buf, f.Actions)
}

// readFlow decodes one flow. The CIDR match field is rederived from the
// dz-expression (openflow.NewFlow), so decoded flows carry a consistent
// Match even though it never travels.
func readFlow(b []byte) (openflow.Flow, []byte, error) {
	if len(b) < 12 {
		return openflow.Flow{}, nil, fmt.Errorf("wire: truncated flow header")
	}
	id := openflow.FlowID(binary.BigEndian.Uint64(b))
	prio := int(binary.BigEndian.Uint32(b[8:]))
	expr, rest, err := unpackExpr(b[12:])
	if err != nil {
		return openflow.Flow{}, nil, err
	}
	actions, rest, err := readActions(rest)
	if err != nil {
		return openflow.Flow{}, nil, err
	}
	f, err := openflow.NewFlow(expr, prio, actions...)
	if err != nil {
		return openflow.Flow{}, nil, err
	}
	f.ID = id
	return f, rest, nil
}

// FlowBatch is one southbound bundle: FlowMods for a single switch.
type FlowBatch struct {
	Switch uint32
	Ops    []openflow.FlowOp
}

// EncodeFlowBatch renders a southbound batch:
//
//	[version u8][sw u32][count u16][op]×
//
// where op is [kind u8] followed by the add flow, the delete id, or the
// modify id+priority+actions.
func EncodeFlowBatch(fb FlowBatch) ([]byte, error) {
	if len(fb.Ops) == 0 || len(fb.Ops) > MaxFlowOps {
		return nil, fmt.Errorf("wire: flow batch with %d ops, want 1..%d", len(fb.Ops), MaxFlowOps)
	}
	buf := make([]byte, 0, 8+len(fb.Ops)*24)
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint32(buf, fb.Switch)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(fb.Ops)))
	var err error
	for _, op := range fb.Ops {
		buf = append(buf, byte(op.Kind))
		switch op.Kind {
		case openflow.OpAdd:
			buf, err = appendFlow(buf, op.Flow)
		case openflow.OpDelete:
			buf = binary.BigEndian.AppendUint64(buf, uint64(op.ID))
		case openflow.OpModify:
			if op.Priority < 0 {
				return nil, fmt.Errorf("wire: negative flow priority %d", op.Priority)
			}
			buf = binary.BigEndian.AppendUint64(buf, uint64(op.ID))
			buf = binary.BigEndian.AppendUint32(buf, uint32(op.Priority))
			buf, err = appendActions(buf, op.Actions)
		default:
			return nil, fmt.Errorf("wire: unknown flow op kind %d", uint8(op.Kind))
		}
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFlowBatch parses a southbound batch.
func DecodeFlowBatch(b []byte) (FlowBatch, error) {
	if len(b) < 7 {
		return FlowBatch{}, fmt.Errorf("wire: flow batch too short")
	}
	if b[0] != Version {
		return FlowBatch{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	fb := FlowBatch{Switch: binary.BigEndian.Uint32(b[1:])}
	count := int(binary.BigEndian.Uint16(b[5:]))
	rest := b[7:]
	if count == 0 || count > MaxFlowOps {
		return FlowBatch{}, fmt.Errorf("wire: flow batch with %d ops, want 1..%d", count, MaxFlowOps)
	}
	var err error
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return FlowBatch{}, fmt.Errorf("wire: truncated flow op")
		}
		kind := openflow.OpKind(rest[0])
		rest = rest[1:]
		var op openflow.FlowOp
		switch kind {
		case openflow.OpAdd:
			var f openflow.Flow
			f, rest, err = readFlow(rest)
			if err != nil {
				return FlowBatch{}, err
			}
			op = openflow.AddOp(f)
			op.Flow.ID = f.ID
		case openflow.OpDelete:
			if len(rest) < 8 {
				return FlowBatch{}, fmt.Errorf("wire: truncated delete op")
			}
			op = openflow.DeleteOp(openflow.FlowID(binary.BigEndian.Uint64(rest)))
			rest = rest[8:]
		case openflow.OpModify:
			if len(rest) < 12 {
				return FlowBatch{}, fmt.Errorf("wire: truncated modify op")
			}
			id := openflow.FlowID(binary.BigEndian.Uint64(rest))
			prio := int(binary.BigEndian.Uint32(rest[8:]))
			var actions []openflow.Action
			actions, rest, err = readActions(rest[12:])
			if err != nil {
				return FlowBatch{}, err
			}
			op = openflow.ModifyOp(id, prio, actions)
		default:
			return FlowBatch{}, fmt.Errorf("wire: unknown flow op kind %d", uint8(kind))
		}
		fb.Ops = append(fb.Ops, op)
	}
	if len(rest) != 0 {
		return FlowBatch{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return fb, nil
}

// FlowResult reports the applied prefix of a southbound batch: one FlowID
// per applied op plus the error message that stopped it, if any.
type FlowResult struct {
	IDs []openflow.FlowID
	Err string
}

// EncodeFlowResult renders a batch result:
//
//	[version u8][count u16][id u64]×[errLen u16][err]
func EncodeFlowResult(r FlowResult) ([]byte, error) {
	if len(r.IDs) > MaxFlowOps {
		return nil, fmt.Errorf("wire: flow result with %d ids exceeds %d", len(r.IDs), MaxFlowOps)
	}
	if len(r.Err) > 0xffff {
		return nil, fmt.Errorf("wire: flow result error of %d bytes", len(r.Err))
	}
	buf := make([]byte, 0, 5+8*len(r.IDs)+len(r.Err))
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.IDs)))
	for _, id := range r.IDs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Err)))
	return append(buf, r.Err...), nil
}

// DecodeFlowResult parses a batch result.
func DecodeFlowResult(b []byte) (FlowResult, error) {
	if len(b) < 3 {
		return FlowResult{}, fmt.Errorf("wire: flow result too short")
	}
	if b[0] != Version {
		return FlowResult{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	count := int(binary.BigEndian.Uint16(b[1:]))
	rest := b[3:]
	if count > MaxFlowOps {
		return FlowResult{}, fmt.Errorf("wire: flow result with %d ids exceeds %d", count, MaxFlowOps)
	}
	if len(rest) < 8*count+2 {
		return FlowResult{}, fmt.Errorf("wire: truncated flow result ids")
	}
	var r FlowResult
	for i := 0; i < count; i++ {
		r.IDs = append(r.IDs, openflow.FlowID(binary.BigEndian.Uint64(rest[8*i:])))
	}
	rest = rest[8*count:]
	errLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) != errLen {
		return FlowResult{}, fmt.Errorf("wire: flow result error section has %d bytes, want %d", len(rest), errLen)
	}
	r.Err = string(rest)
	return r, nil
}

// FlowList is the installed-flow report of one switch.
type FlowList struct {
	Flows []openflow.Flow
}

// EncodeFlowList renders a flow report:
//
//	[version u8][count u16][flow]×
func EncodeFlowList(l FlowList) ([]byte, error) {
	if len(l.Flows) > MaxFlowOps {
		return nil, fmt.Errorf("wire: flow list with %d flows exceeds %d", len(l.Flows), MaxFlowOps)
	}
	buf := make([]byte, 0, 3+len(l.Flows)*24)
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(l.Flows)))
	var err error
	for _, f := range l.Flows {
		buf, err = appendFlow(buf, f)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFlowList parses a flow report.
func DecodeFlowList(b []byte) (FlowList, error) {
	if len(b) < 3 {
		return FlowList{}, fmt.Errorf("wire: flow list too short")
	}
	if b[0] != Version {
		return FlowList{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	count := int(binary.BigEndian.Uint16(b[1:]))
	rest := b[3:]
	if count > MaxFlowOps {
		return FlowList{}, fmt.Errorf("wire: flow list with %d flows exceeds %d", count, MaxFlowOps)
	}
	var l FlowList
	var err error
	for i := 0; i < count; i++ {
		var f openflow.Flow
		f, rest, err = readFlow(rest)
		if err != nil {
			return FlowList{}, err
		}
		l.Flows = append(l.Flows, f)
	}
	if len(rest) != 0 {
		return FlowList{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return l, nil
}

// EncodeU32 renders a bare u32 payload (switch ids, partition ids).
func EncodeU32(v uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, v)
}

// DecodeU32 parses a bare u32 payload.
func DecodeU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: u32 payload of %d bytes", len(b))
	}
	return binary.BigEndian.Uint32(b), nil
}

// EncodeU64 renders a bare u64 payload (simulated clock readings).
func EncodeU64(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

// DecodeU64 parses a bare u64 payload.
func DecodeU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: u64 payload of %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}
