package wire

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/space"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindHello, Corr: 1, Payload: []byte("x")},
		{Kind: KindOK, Corr: 0xdeadbeefcafe, Payload: nil},
		{Kind: KindDeliver, Corr: 0, Payload: bytes.Repeat([]byte{7}, 1000)},
		{Kind: KindGoodbye, Corr: 0, Payload: nil},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Decode from the concatenated stream.
	rest := buf
	for i, want := range frames {
		var got Frame
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Corr != want.Corr || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	// And via the io.Reader path.
	r := bytes.NewReader(buf)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Corr != want.Corr || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("read frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Kind: 0}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := AppendFrame(nil, Frame{Kind: KindOK, Payload: make([]byte, MaxFramePayload+1)}); err == nil {
		t.Error("oversize payload accepted")
	}
	// Truncated header and truncated body must ask for more bytes.
	ok, _ := AppendFrame(nil, Frame{Kind: KindOK, Corr: 9})
	for cut := 0; cut < len(ok); cut++ {
		if _, _, err := DecodeFrame(ok[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
	// Oversize length header must be rejected before allocation.
	bad := append([]byte(nil), ok...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(bad); err == nil || err == io.ErrUnexpectedEOF {
		t.Fatalf("oversize length: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || err == io.EOF {
		t.Fatalf("oversize length via reader: got %v", err)
	}
	// A frame claiming an undefined kind is rejected.
	bad = append([]byte(nil), ok...)
	bad[4] = 200
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Error("undefined kind accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b, err := EncodeHello(Hello{ID: "client-7"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != "client-7" {
		t.Fatalf("got %+v", h)
	}
	if _, err := EncodeHello(Hello{}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := DecodeHello(append(b, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestHelloOKRoundTrip(t *testing.T) {
	in := HelloOK{Hosts: []uint32{3, 5, 9}, Partitions: []int32{0, 1, -1}}
	b, err := EncodeHelloOK(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHelloOK(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := DecodeHelloOK(b[:len(b)-1]); err == nil {
		t.Error("truncated hello-ok accepted")
	}
}

func TestControlReqRoundTrip(t *testing.T) {
	in := ControlReq{
		Op:   "subscribe",
		ID:   "s1",
		Host: 42,
		Ranges: []Range{
			{Attr: "y", Lo: 5, Hi: 10},
			{Attr: "x", Lo: 0, Hi: 1023},
		},
	}
	b, err := EncodeControlReq(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeControlReq(b)
	if err != nil {
		t.Fatal(err)
	}
	// Encoding sorts ranges by attribute.
	want := in
	want.Ranges = []Range{{Attr: "x", Lo: 0, Hi: 1023}, {Attr: "y", Lo: 5, Hi: 10}}
	if !reflect.DeepEqual(want, out) {
		t.Fatalf("got %+v want %+v", out, want)
	}
	// Equal filters written in different orders encode identically.
	in2 := in
	in2.Ranges = []Range{in.Ranges[1], in.Ranges[0]}
	b2, err := EncodeControlReq(in2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("range order leaked into the encoding")
	}
	if _, err := EncodeControlReq(ControlReq{Op: "nope", ID: "x"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := DecodeControlReq(append(b, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestPublishRoundTrip(t *testing.T) {
	in := PublishReq{ID: "p1", Events: []space.Event{
		{Values: []uint32{1, 2}},
		{Values: []uint32{3, 4}},
	}}
	b, err := EncodePublish(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodePublish(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := EncodePublish(PublishReq{ID: "p"}); err == nil {
		t.Error("empty publish accepted")
	}
	if _, err := DecodePublish(b[:len(b)-1]); err == nil {
		t.Error("truncated publish accepted")
	}
}

func TestDeliveryRoundTrip(t *testing.T) {
	in := Delivery{
		SubscriptionID: "s9",
		Event:          space.Event{Values: []uint32{7, 8, 9}},
		At:             1500 * time.Microsecond,
		Latency:        300 * time.Microsecond,
		FalsePositive:  true,
	}
	b, err := EncodeDelivery(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDelivery(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := DecodeDelivery(append(b, 1)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDeliverBatchRoundTrip(t *testing.T) {
	in := []Delivery{
		{SubscriptionID: "s1", Event: space.Event{Values: []uint32{1, 2}},
			At: 100 * time.Microsecond, Latency: 10 * time.Microsecond},
		{SubscriptionID: "s2", Event: space.Event{Values: []uint32{3}},
			At: 200 * time.Microsecond, FalsePositive: true},
		{SubscriptionID: "s3", Event: space.Event{Values: []uint32{4, 5, 6}},
			Trace: TraceContext{TraceID: 7, SpanID: 9, PubWallNanos: 11}, Hops: 3},
	}
	b, err := EncodeDeliverBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDeliverBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := EncodeDeliverBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := DecodeDeliverBatch(append(b, 1)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeDeliverBatch(b[:len(b)-1]); err == nil {
		t.Error("truncated batch accepted")
	}
	if _, err := DecodeDeliverBatch([]byte{Version, 0, 0}); err == nil {
		t.Error("zero-count batch accepted")
	}
	if _, err := EncodeDeliverBatch(make([]Delivery, MaxDeliveries+1)); err == nil {
		t.Error("oversize batch accepted")
	}
}

func TestAppendDeliverBatchChunking(t *testing.T) {
	ds := make([]Delivery, 40)
	for i := range ds {
		ds[i] = Delivery{SubscriptionID: "sub", Event: space.Event{Values: []uint32{uint32(i), 2, 3}}}
	}
	one, err := EncodeDeliverBatch(ds[:1])
	if err != nil {
		t.Fatal(err)
	}
	// Cap each chunk at about four deliveries and reassemble: the chunks
	// must cover the batch exactly, in order, each consuming at least one.
	maxBytes := 3 + 4*(len(one)-3)
	var got []Delivery
	rest := ds
	for len(rest) > 0 {
		b, n, err := AppendDeliverBatch(nil, rest, maxBytes)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatalf("chunk consumed %d deliveries", n)
		}
		if len(b) > maxBytes && n > 1 {
			t.Fatalf("multi-delivery chunk of %d bytes exceeds cap %d", len(b), maxBytes)
		}
		dec, err := DecodeDeliverBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != n {
			t.Fatalf("chunk decodes to %d deliveries, consumed %d", len(dec), n)
		}
		got = append(got, dec...)
		rest = rest[n:]
	}
	if !reflect.DeepEqual(ds, got) {
		t.Fatalf("reassembled chunks drifted from input")
	}
	// A cap smaller than any single delivery still makes progress: one
	// delivery per frame (the frame-size limit protects the peer).
	if _, n, err := AppendDeliverBatch(nil, ds, 1); err != nil || n != 1 {
		t.Fatalf("tiny cap: n=%d err=%v, want 1 delivery", n, err)
	}
}

func testFlow(t *testing.T, expr dz.Expr, prio int, actions ...openflow.Action) openflow.Flow {
	t.Helper()
	f, err := openflow.NewFlow(expr, prio, actions...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFlowBatchRoundTrip(t *testing.T) {
	dest := netip.MustParseAddr("fd00::7")
	add := testFlow(t, "0101", 4,
		openflow.Action{OutPort: 2},
		openflow.Action{OutPort: 3, SetDest: dest})
	add.ID = 11
	in := FlowBatch{
		Switch: 9,
		Ops: []openflow.FlowOp{
			openflow.AddOp(add),
			openflow.DeleteOp(17),
			openflow.ModifyOp(12, 6, []openflow.Action{{OutPort: 5}}),
		},
	}
	// AddOp copies the flow; keep the wire id.
	in.Ops[0].Flow.ID = add.ID
	b, err := EncodeFlowBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFlowBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := EncodeFlowBatch(FlowBatch{Switch: 1}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := DecodeFlowBatch(b[:len(b)-1]); err == nil {
		t.Error("truncated batch accepted")
	}
	if _, err := DecodeFlowBatch(append(b, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestFlowBatchIPv4Rewrite(t *testing.T) {
	f := testFlow(t, "1", 1, openflow.Action{OutPort: 1, SetDest: netip.MustParseAddr("10.0.0.9")})
	in := FlowBatch{Switch: 1, Ops: []openflow.FlowOp{openflow.AddOp(f)}}
	b, err := EncodeFlowBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFlowBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Ops[0].Flow.Actions[0].SetDest
	if got != netip.MustParseAddr("10.0.0.9") {
		t.Fatalf("IPv4 rewrite address drifted: %v", got)
	}
}

func TestFlowResultRoundTrip(t *testing.T) {
	in := FlowResult{IDs: []openflow.FlowID{1, 0, 99}, Err: "openflow: table full"}
	b, err := EncodeFlowResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFlowResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// Empty result (no ids, no error) round-trips too.
	b, err = EncodeFlowResult(FlowResult{})
	if err != nil {
		t.Fatal(err)
	}
	out, err = DecodeFlowResult(b)
	if err != nil || out.IDs != nil || out.Err != "" {
		t.Fatalf("empty result: %+v, %v", out, err)
	}
}

func TestFlowListRoundTrip(t *testing.T) {
	a := testFlow(t, "00", 2, openflow.Action{OutPort: 1})
	a.ID = 5
	bfl := testFlow(t, "0110", 4, openflow.Action{OutPort: 2, SetDest: netip.MustParseAddr("fd00::3")})
	bfl.ID = 6
	in := FlowList{Flows: []openflow.Flow{a, bfl}}
	b, err := EncodeFlowList(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFlowList(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// The decoded match field is rederived and must agree with the source.
	if out.Flows[1].Match != bfl.Match {
		t.Fatalf("match drifted: %v vs %v", out.Flows[1].Match, bfl.Match)
	}
}

func TestU32U64(t *testing.T) {
	if v, err := DecodeU32(EncodeU32(0xfeedface)); err != nil || v != 0xfeedface {
		t.Fatalf("u32: %v %v", v, err)
	}
	if v, err := DecodeU64(EncodeU64(1 << 40)); err != nil || v != 1<<40 {
		t.Fatalf("u64: %v %v", v, err)
	}
	if _, err := DecodeU32([]byte{1, 2, 3}); err == nil {
		t.Error("short u32 accepted")
	}
	if _, err := DecodeU64([]byte{1}); err == nil {
		t.Error("short u64 accepted")
	}
}

// TestDecodersRejectOversizeCounts pins the header-driven limits: count
// fields beyond the codec maxima must fail before any allocation loop.
func TestDecodersRejectOversizeCounts(t *testing.T) {
	// Publish claiming 0xffff events with no bodies.
	pub := []byte{Version, 1, 'p', 0xff, 0xff}
	if _, err := DecodePublish(pub); err == nil || strings.Contains(err.Error(), "panic") {
		t.Errorf("oversize publish count: %v", err)
	}
	// Flow batch claiming max ops with no bodies.
	fb := []byte{Version, 0, 0, 0, 1, 0xff, 0xff}
	if _, err := DecodeFlowBatch(fb); err == nil {
		t.Error("oversize batch count accepted")
	}
}
