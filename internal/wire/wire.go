// Package wire defines PLEROMA's on-the-wire encodings: the payload of
// event datagrams (attribute values; the dz-expression itself travels in
// the IPv6 destination address) and the control requests hosts send to
// IP_vir (Section 2). The formats are versioned, length-prefixed, and
// fully validated on decode — the codec a real deployment would put on
// UDP sockets, used here by the in-band signalling path.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

// Version is the current wire format version.
const Version = 1

// Version2 marks trace-bearing PublishReq and Delivery payloads: the
// payload opens with a TraceContext before the Version-1 body. Peers only
// send Version2 after both sides advertised FlagTracing in the session
// handshake; everything else still encodes as Version.
const Version2 = 2

// FlagTracing is the session capability bit for distributed tracing:
// a client sets it in Hello.Flags when it can consume trace contexts, the
// server echoes it in HelloOK.Flags when it can emit them, and only then
// do Version2 payloads flow on the connection.
const FlagTracing uint8 = 1 << 0

// FlagBatching is the session capability bit for coalesced delivery
// frames: a client sets it in Hello.Flags when it can decode
// KindDeliverBatch, the server echoes it in HelloOK.Flags when it will
// emit them, and only then do batch frames flow on the connection. Peers
// that never negotiated it keep the per-event KindDeliver stream,
// byte-identical to the pre-batching protocol.
const FlagBatching uint8 = 1 << 1

// Limits guarding decoders against hostile input.
const (
	// MaxDims bounds the attribute count of an event payload.
	MaxDims = 64
	// MaxIDLen bounds client identifier length.
	MaxIDLen = 255
	// MaxSetMembers bounds the DZ set size of a control request.
	MaxSetMembers = 4096
	// MaxExprLen bounds a single dz-expression.
	MaxExprLen = 112
)

// EncodeEvent renders an event payload:
//
//	[version u8][dims u8][value u32 big-endian]×dims
func EncodeEvent(ev space.Event) ([]byte, error) {
	return appendEvent(make([]byte, 0, 2+4*len(ev.Values)), ev)
}

// appendEvent appends an EncodeEvent payload to dst, allocation-free when
// dst has capacity — the hot-path form the frame codecs build on.
func appendEvent(dst []byte, ev space.Event) ([]byte, error) {
	if len(ev.Values) == 0 || len(ev.Values) > MaxDims {
		return nil, fmt.Errorf("wire: event has %d values, want 1..%d", len(ev.Values), MaxDims)
	}
	dst = append(dst, Version, byte(len(ev.Values)))
	for _, v := range ev.Values {
		dst = binary.BigEndian.AppendUint32(dst, v)
	}
	return dst, nil
}

// DecodeEvent parses an event payload.
func DecodeEvent(b []byte) (space.Event, error) {
	if len(b) < 2 {
		return space.Event{}, fmt.Errorf("wire: event payload too short (%d bytes)", len(b))
	}
	if b[0] != Version {
		return space.Event{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	dims := int(b[1])
	if dims == 0 || dims > MaxDims {
		return space.Event{}, fmt.Errorf("wire: event dims %d out of range", dims)
	}
	if len(b) != 2+4*dims {
		return space.Event{}, fmt.Errorf("wire: event payload length %d, want %d", len(b), 2+4*dims)
	}
	vals := make([]uint32, dims)
	for i := range vals {
		vals[i] = binary.BigEndian.Uint32(b[2+4*i:])
	}
	return space.Event{Values: vals}, nil
}

// packExpr appends a dz-expression as [len u8][bits packed MSB-first].
func packExpr(buf []byte, e dz.Expr) ([]byte, error) {
	if e.Len() > MaxExprLen {
		return nil, fmt.Errorf("wire: dz expression of %d bits exceeds %d", e.Len(), MaxExprLen)
	}
	buf = append(buf, byte(e.Len()))
	var cur byte
	for i := 0; i < e.Len(); i++ {
		if e[i] == '1' {
			cur |= 1 << uint(7-i%8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if e.Len()%8 != 0 {
		buf = append(buf, cur)
	}
	return buf, nil
}

// unpackExpr reads one packed expression, returning it and the remainder.
func unpackExpr(b []byte) (dz.Expr, []byte, error) {
	if len(b) < 1 {
		return "", nil, fmt.Errorf("wire: truncated dz expression header")
	}
	n := int(b[0])
	if n > MaxExprLen {
		return "", nil, fmt.Errorf("wire: dz expression of %d bits exceeds %d", n, MaxExprLen)
	}
	nbytes := (n + 7) / 8
	if len(b) < 1+nbytes {
		return "", nil, fmt.Errorf("wire: truncated dz expression body")
	}
	bits := make([]byte, n)
	for i := 0; i < n; i++ {
		if b[1+i/8]&(1<<uint(7-i%8)) != 0 {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	// Padding bits past the expression length must be zero so every
	// expression has exactly one encoding.
	if n%8 != 0 && b[nbytes]&(0xff>>uint(n%8)) != 0 {
		return "", nil, fmt.Errorf("wire: nonzero padding in dz expression")
	}
	return dz.Expr(bits), b[1+nbytes:], nil
}

// Op codes of control requests.
const (
	opAdvertise byte = iota + 1
	opSubscribe
	opUnsubscribe
	opUnadvertise
)

// Signal is the decoded form of an IP_vir control request.
type Signal struct {
	Op   string // "advertise" | "subscribe" | "unsubscribe" | "unadvertise"
	ID   string
	Host uint32
	Set  dz.Set
}

func opCode(op string) (byte, error) {
	switch op {
	case "advertise":
		return opAdvertise, nil
	case "subscribe":
		return opSubscribe, nil
	case "unsubscribe":
		return opUnsubscribe, nil
	case "unadvertise":
		return opUnadvertise, nil
	default:
		return 0, fmt.Errorf("wire: unknown op %q", op)
	}
}

func opName(code byte) (string, error) {
	switch code {
	case opAdvertise:
		return "advertise", nil
	case opSubscribe:
		return "subscribe", nil
	case opUnsubscribe:
		return "unsubscribe", nil
	case opUnadvertise:
		return "unadvertise", nil
	default:
		return "", fmt.Errorf("wire: unknown op code %d", code)
	}
}

// EncodeSignal renders a control request:
//
//	[version u8][op u8][idLen u8][id][host u32][count u16][expr]×count
func EncodeSignal(s Signal) ([]byte, error) {
	code, err := opCode(s.Op)
	if err != nil {
		return nil, err
	}
	if len(s.ID) == 0 || len(s.ID) > MaxIDLen {
		return nil, fmt.Errorf("wire: id length %d out of range 1..%d", len(s.ID), MaxIDLen)
	}
	if len(s.Set) > MaxSetMembers {
		return nil, fmt.Errorf("wire: DZ set of %d members exceeds %d", len(s.Set), MaxSetMembers)
	}
	buf := make([]byte, 0, 16+len(s.ID)+4*len(s.Set))
	buf = append(buf, Version, code, byte(len(s.ID)))
	buf = append(buf, s.ID...)
	buf = binary.BigEndian.AppendUint32(buf, s.Host)
	if len(s.Set) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: DZ set too large")
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Set)))
	for _, e := range s.Set {
		buf, err = packExpr(buf, e)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeSignal parses a control request.
func DecodeSignal(b []byte) (Signal, error) {
	if len(b) < 3 {
		return Signal{}, fmt.Errorf("wire: signal too short (%d bytes)", len(b))
	}
	if b[0] != Version {
		return Signal{}, fmt.Errorf("wire: unsupported version %d", b[0])
	}
	op, err := opName(b[1])
	if err != nil {
		return Signal{}, err
	}
	idLen := int(b[2])
	rest := b[3:]
	if idLen == 0 || len(rest) < idLen+6 {
		return Signal{}, fmt.Errorf("wire: truncated signal id/header")
	}
	id := string(rest[:idLen])
	rest = rest[idLen:]
	host := binary.BigEndian.Uint32(rest)
	count := int(binary.BigEndian.Uint16(rest[4:]))
	rest = rest[6:]
	if count > MaxSetMembers {
		return Signal{}, fmt.Errorf("wire: DZ set of %d members exceeds %d", count, MaxSetMembers)
	}
	exprs := make([]dz.Expr, 0, count)
	for i := 0; i < count; i++ {
		var e dz.Expr
		e, rest, err = unpackExpr(rest)
		if err != nil {
			return Signal{}, err
		}
		exprs = append(exprs, e)
	}
	if len(rest) != 0 {
		return Signal{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return Signal{Op: op, ID: id, Host: host, Set: dz.NewSet(exprs...)}, nil
}
