package wire_test

import (
	"reflect"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/wire"
)

func TestJournalRecordRoundTrip(t *testing.T) {
	cases := []wire.Record{
		{Epoch: 0, Seq: 1, Op: wire.OpAdvertise, ID: "p1", Node: 3,
			Set: dz.NewSet(dz.Expr("01"), dz.Expr("110"))},
		{Epoch: 2, Seq: 900, Op: wire.OpSubscribe, ID: "xsub:s9#4", Node: 12, ViaPort: 7,
			Set: dz.NewSet(dz.Expr(""))},
		{Epoch: 1, Seq: 2, Op: wire.OpUnsubscribe, ID: "s1"},
		{Epoch: 4, Seq: 1 << 40, Op: wire.OpUnadvertise, ID: "p1"},
		{Epoch: 7, Seq: 77, Op: wire.OpReconfigure},
	}
	for _, rec := range cases {
		b, err := wire.EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		got, err := wire.DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("round trip: got %+v, want %+v", got, rec)
		}
		// Re-encoding the decoded record must be byte-identical (the
		// journal's determinism rests on this).
		b2, err := wire.EncodeRecord(got)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b2, b) {
			t.Errorf("re-encode of %+v differs", rec)
		}
	}
}

func TestJournalRecordEncodeErrors(t *testing.T) {
	long := make([]byte, wire.MaxIDLen+1)
	for i := range long {
		long[i] = 'x'
	}
	cases := []struct {
		name string
		rec  wire.Record
	}{
		{"unknown op", wire.Record{Op: "mystery", ID: "a"}},
		{"empty id", wire.Record{Op: wire.OpAdvertise}},
		{"oversized id", wire.Record{Op: wire.OpAdvertise, ID: string(long)}},
		{"reconfigure with id", wire.Record{Op: wire.OpReconfigure, ID: "a"}},
	}
	for _, tc := range cases {
		if _, err := wire.EncodeRecord(tc.rec); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestJournalRecordDecodeErrors(t *testing.T) {
	good, err := wire.EncodeRecord(wire.Record{
		Op: wire.OpAdvertise, ID: "p", Seq: 1, Set: dz.NewSet(dz.Expr("0")),
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := wire.DecodeRecord(good[:10]); err == nil {
		t.Error("truncated record must fail")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := wire.DecodeRecord(bad); err == nil {
		t.Error("bad version must fail")
	}
	bad = append([]byte(nil), good...)
	bad[1] = 0xEE
	if _, err := wire.DecodeRecord(bad); err == nil {
		t.Error("bad op code must fail")
	}
	if _, err := wire.DecodeRecord(append(good, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestAppendReadSetRoundTrip(t *testing.T) {
	sets := []dz.Set{
		nil,
		dz.NewSet(dz.Expr("")),
		dz.NewSet(dz.Expr("0"), dz.Expr("10"), dz.Expr("111")),
	}
	for _, s := range sets {
		b, err := wire.AppendSet(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := wire.ReadSet(append(b, 0xAB))
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 1 || rest[0] != 0xAB {
			t.Errorf("remainder: got %x", rest)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("set round trip: got %v, want %v", got, s)
		}
		// nil and empty must both re-encode identically.
		b2, err := wire.AppendSet(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b2, b) {
			t.Errorf("re-encode of %v differs", s)
		}
	}
	if _, _, err := wire.ReadSet([]byte{0}); err == nil {
		t.Error("truncated set header must fail")
	}
}
