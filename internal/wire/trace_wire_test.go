package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"pleroma/internal/space"
)

func TestHelloFlagsRoundTrip(t *testing.T) {
	b, err := EncodeHello(Hello{ID: "c", Flags: FlagTracing})
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags != FlagTracing {
		t.Fatalf("flags = %d, want %d", h.Flags, FlagTracing)
	}
	// Flag-free hellos must be bytewise identical to the pre-flags format.
	plain, err := EncodeHello(Hello{ID: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, b[:len(b)-1]) {
		t.Error("flag-free hello drifted from the legacy encoding")
	}
	// A present-but-zero flags byte is non-canonical.
	if _, err := DecodeHello(append(plain, 0)); err == nil {
		t.Error("zero flags byte accepted")
	}
}

func TestHelloOKFlagsRoundTrip(t *testing.T) {
	in := HelloOK{Hosts: []uint32{1, 2}, Partitions: []int32{0}, Flags: FlagTracing}
	b, err := EncodeHelloOK(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHelloOK(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	plain := in
	plain.Flags = 0
	pb, err := EncodeHelloOK(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, b[:len(b)-1]) {
		t.Error("flag-free hello-ok drifted from the legacy encoding")
	}
	if _, err := DecodeHelloOK(append(pb, 0)); err == nil {
		t.Error("zero flags byte accepted")
	}
	if _, err := DecodeHelloOK(append(pb, 1, 2)); err == nil {
		t.Error("two trailing bytes accepted")
	}
}

func TestPublishTraceRoundTrip(t *testing.T) {
	in := PublishReq{
		ID:     "p1",
		Seq:    42,
		Events: []space.Event{{Values: []uint32{1, 2}}},
		Trace:  TraceContext{TraceID: 0xdead, SpanID: 0xbeef, PubWallNanos: 1712345678901234567},
	}
	b, err := EncodePublish(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != Version2 {
		t.Fatalf("traced publish version = %d, want %d", b[0], Version2)
	}
	out, err := DecodePublish(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	// Untraced publishes keep the Version-1 payload.
	in.Trace = TraceContext{}
	b, err = EncodePublish(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != Version {
		t.Fatalf("untraced publish version = %d, want %d", b[0], Version)
	}
	// A Version2 payload must carry a minted trace id: the zero context has
	// a canonical Version-1 encoding.
	bad := append([]byte{Version2}, make([]byte, 24)...)
	bad = append(bad, b[1:]...)
	if _, err := DecodePublish(bad); err == nil {
		t.Error("version-2 publish with zero trace id accepted")
	}
}

func TestDeliveryTraceRoundTrip(t *testing.T) {
	in := Delivery{
		SubscriptionID: "s9",
		Event:          space.Event{Values: []uint32{7, 8}},
		At:             1500 * time.Microsecond,
		Latency:        300 * time.Microsecond,
		FalsePositive:  false,
		Trace:          TraceContext{TraceID: 9, SpanID: 11, PubWallNanos: 77},
		Hops:           5,
	}
	b, err := EncodeDelivery(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != Version2 {
		t.Fatalf("traced delivery version = %d, want %d", b[0], Version2)
	}
	out, err := DecodeDelivery(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
	if _, err := DecodeDelivery(b[:10]); err == nil {
		t.Error("truncated trace context accepted")
	}
	// Untraced deliveries keep the Version-1 payload and drop hops.
	in.Trace = TraceContext{}
	b, err = EncodeDelivery(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != Version {
		t.Fatalf("untraced delivery version = %d, want %d", b[0], Version)
	}
	out, err = DecodeDelivery(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hops != 0 {
		t.Fatalf("hops leaked onto an untraced delivery: %d", out.Hops)
	}
}

func TestTraceContextValid(t *testing.T) {
	if (TraceContext{}).Valid() {
		t.Error("zero context reported valid")
	}
	if (TraceContext{SpanID: 1}).Valid() {
		t.Error("context without trace id reported valid")
	}
	if !(TraceContext{TraceID: 1}).Valid() {
		t.Error("minted context reported invalid")
	}
}
