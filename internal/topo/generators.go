package topo

import (
	"fmt"
)

// TestbedFatTree builds the hierarchical fat-tree of the paper's SDN
// testbed (Figure 6): 10 switches R1..R10 in three tiers (4 edge, 4
// aggregation, 2 core) and 8 end hosts h1..h8, two per edge switch.
func TestbedFatTree(params LinkParams) (*Graph, error) {
	g := NewGraph()
	edge := make([]NodeID, 4)
	agg := make([]NodeID, 4)
	core := make([]NodeID, 2)
	for i := range edge {
		edge[i] = g.AddSwitch(fmt.Sprintf("R%d", i+1))
	}
	for i := range agg {
		agg[i] = g.AddSwitch(fmt.Sprintf("R%d", i+5))
	}
	for i := range core {
		core[i] = g.AddSwitch(fmt.Sprintf("R%d", i+9))
	}
	// Two pods: pod 0 = edges R1,R2 + aggs R5,R6; pod 1 = edges R3,R4 +
	// aggs R7,R8. Every edge connects to both aggs of its pod; every agg
	// connects to both cores.
	for pod := 0; pod < 2; pod++ {
		for e := 0; e < 2; e++ {
			for a := 0; a < 2; a++ {
				if _, _, err := g.Connect(edge[pod*2+e], agg[pod*2+a], params); err != nil {
					return nil, err
				}
			}
		}
		for a := 0; a < 2; a++ {
			for c := 0; c < 2; c++ {
				if _, _, err := g.Connect(agg[pod*2+a], core[c], params); err != nil {
					return nil, err
				}
			}
		}
	}
	// Two hosts per edge switch: h1..h8.
	h := 1
	for _, e := range edge {
		for j := 0; j < 2; j++ {
			host := g.AddHost(fmt.Sprintf("h%d", h))
			h++
			if _, _, err := g.Connect(host, e, params); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// FatTree builds a generic pod-based fat-tree: pods pods of 2 aggregation
// and 2 edge switches each, numCore core switches fully meshed with all
// aggregation switches, and hostsPerEdge hosts per edge switch. With
// pods=4, numCore=4 this is the paper's 20-switch Mininet fat-tree.
func FatTree(pods, numCore, hostsPerEdge int, params LinkParams) (*Graph, error) {
	if pods <= 0 || numCore <= 0 || hostsPerEdge < 0 {
		return nil, fmt.Errorf("topo: invalid fat-tree shape pods=%d core=%d hosts=%d",
			pods, numCore, hostsPerEdge)
	}
	g := NewGraph()
	core := make([]NodeID, numCore)
	for i := range core {
		core[i] = g.AddSwitch(fmt.Sprintf("core%d", i))
	}
	hostNum := 1
	for p := 0; p < pods; p++ {
		aggs := []NodeID{
			g.AddSwitch(fmt.Sprintf("agg%d-0", p)),
			g.AddSwitch(fmt.Sprintf("agg%d-1", p)),
		}
		edges := []NodeID{
			g.AddSwitch(fmt.Sprintf("edge%d-0", p)),
			g.AddSwitch(fmt.Sprintf("edge%d-1", p)),
		}
		for _, e := range edges {
			for _, a := range aggs {
				if _, _, err := g.Connect(e, a, params); err != nil {
					return nil, err
				}
			}
			for j := 0; j < hostsPerEdge; j++ {
				host := g.AddHost(fmt.Sprintf("h%d", hostNum))
				hostNum++
				if _, _, err := g.Connect(host, e, params); err != nil {
					return nil, err
				}
			}
		}
		// Each aggregation switch connects to half the cores (classic
		// fat-tree wiring); with 2 aggs per pod, agg i takes cores with
		// index ≡ i mod 2 — and always at least one core.
		for ai, a := range aggs {
			connected := false
			for c := ai; c < numCore; c += 2 {
				if _, _, err := g.Connect(a, core[c], params); err != nil {
					return nil, err
				}
				connected = true
			}
			if !connected {
				if _, _, err := g.Connect(a, core[0], params); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Ring builds a ring of n switches, each with one attached host — the
// paper's second Mininet topology (Section 6.1).
func Ring(n int, params LinkParams) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs at least 3 switches, got %d", n)
	}
	g := NewGraph()
	sw := make([]NodeID, n)
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("R%d", i+1))
	}
	for i := range sw {
		if _, _, err := g.Connect(sw[i], sw[(i+1)%n], params); err != nil {
			return nil, err
		}
	}
	for i, s := range sw {
		host := g.AddHost(fmt.Sprintf("h%d", i+1))
		if _, _, err := g.Connect(host, s, params); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Linear builds a chain of n switches with one host at each end — handy
// for longest-path delay measurements.
func Linear(n int, params LinkParams) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: linear needs at least 1 switch, got %d", n)
	}
	g := NewGraph()
	sw := make([]NodeID, n)
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("R%d", i+1))
		if i > 0 {
			if _, _, err := g.Connect(sw[i-1], sw[i], params); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range []string{"h1", "h2"} {
		host := g.AddHost(name)
		attach := sw[0]
		if name == "h2" {
			attach = sw[n-1]
		}
		if _, _, err := g.Connect(host, attach, params); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// PartitionRing splits a ring topology (as built by Ring) into n contiguous
// arcs, assigning partition IDs 0..n-1 to switches and propagating them to
// hosts. Every arc is internally connected.
func PartitionRing(g *Graph, n int) error {
	sw := g.Switches()
	if n <= 0 || n > len(sw) {
		return fmt.Errorf("topo: cannot split %d switches into %d partitions", len(sw), n)
	}
	per := len(sw) / n
	rem := len(sw) % n
	idx := 0
	for p := 0; p < n; p++ {
		count := per
		if p < rem {
			count++
		}
		for i := 0; i < count; i++ {
			if err := g.SetPartition(sw[idx], p); err != nil {
				return err
			}
			idx++
		}
	}
	return g.InheritHostPartitions()
}

// PartitionFatTree splits a FatTree-generated graph into n partitions:
// pods 1..n-1 each become their own partition, while partition 0 keeps the
// core switches and every remaining pod (cores keep partition 0 internally
// connected; every other partition is a single, internally connected pod).
// Pod-to-core links of the non-zero partitions become border links.
func PartitionFatTree(g *Graph, n int) error {
	if n <= 0 {
		return fmt.Errorf("topo: need at least one partition")
	}
	for _, node := range g.Nodes() {
		if node.Kind != KindSwitch {
			continue
		}
		p := 0
		var pod int
		switch {
		case len(node.Name) > 3 && node.Name[:3] == "agg":
			if _, err := fmt.Sscanf(node.Name, "agg%d-", &pod); err == nil && pod < n-1 {
				p = pod + 1
			}
		case len(node.Name) > 4 && node.Name[:4] == "edge":
			if _, err := fmt.Sscanf(node.Name, "edge%d-", &pod); err == nil && pod < n-1 {
				p = pod + 1
			}
		default: // core switches stay in partition 0
			p = 0
		}
		if err := g.SetPartition(node.ID, p); err != nil {
			return err
		}
	}
	return g.InheritHostPartitions()
}
