package topo

import (
	"testing"
	"time"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	h1 := g.AddHost("h1")

	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes=%d", g.NumNodes())
	}
	p1, p2, err := g.Connect(s1, s2, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != 1 || p2 != 1 {
		t.Errorf("ports=(%d,%d), want (1,1)", p1, p2)
	}
	p3, _, err := g.Connect(s1, h1, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != 2 {
		t.Errorf("second port on s1=%d, want 2", p3)
	}
	if _, _, err := g.Connect(s1, s1, DefaultLinkParams); err == nil {
		t.Error("self link must fail")
	}
	if _, _, err := g.Connect(s1, NodeID(99), DefaultLinkParams); err == nil {
		t.Error("unknown node must fail")
	}

	peer, ok := g.PortToPeer(s1, 1)
	if !ok || peer != s2 {
		t.Errorf("PortToPeer=(%d,%v)", peer, ok)
	}
	port, ok := g.PortTowards(s1, h1)
	if !ok || port != 2 {
		t.Errorf("PortTowards=(%d,%v)", port, ok)
	}
	if _, ok := g.PortTowards(s2, h1); ok {
		t.Error("no port s2->h1")
	}
	l, ok := g.LinkBetween(s1, s2)
	if !ok {
		t.Fatal("LinkBetween missing")
	}
	other, ok := l.Other(s1)
	if !ok || other != s2 {
		t.Errorf("Other=(%d,%v)", other, ok)
	}
	if _, ok := l.Other(h1); ok {
		t.Error("Other with non-endpoint must fail")
	}
	lp, ok := l.PortAt(s2)
	if !ok || lp != 1 {
		t.Errorf("PortAt=(%d,%v)", lp, ok)
	}
	if _, ok := l.PortAt(h1); ok {
		t.Error("PortAt non-endpoint must fail")
	}

	sw := g.Switches()
	if len(sw) != 2 || sw[0] != s1 || sw[1] != s2 {
		t.Errorf("Switches=%v", sw)
	}
	if hosts := g.Hosts(); len(hosts) != 1 || hosts[0] != h1 {
		t.Errorf("Hosts=%v", hosts)
	}
	att, err := g.AttachedSwitch(h1)
	if err != nil || att != s1 {
		t.Errorf("AttachedSwitch=(%d,%v)", att, err)
	}
	if _, err := g.AttachedSwitch(s1); err == nil {
		t.Error("AttachedSwitch on switch must fail")
	}
}

func TestNodeKindString(t *testing.T) {
	if KindSwitch.String() != "switch" || KindHost.String() != "host" {
		t.Error("kind strings wrong")
	}
	if NodeKind(0).String() != "unknown" {
		t.Error("zero kind must be unknown")
	}
}

func TestTestbedFatTree(t *testing.T) {
	g, err := TestbedFatTree(DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Switches()); got != 10 {
		t.Errorf("switches=%d, want 10", got)
	}
	if got := len(g.Hosts()); got != 8 {
		t.Errorf("hosts=%d, want 8", got)
	}
	// Every host can reach every other host.
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if _, err := g.ShortestPath(a, b); err != nil {
				t.Fatalf("no path %d->%d: %v", a, b, err)
			}
		}
	}
}

func TestFatTree20Switches(t *testing.T) {
	// The Mininet configuration: 4 pods × 4 switches + 4 cores = 20.
	g, err := FatTree(4, 4, 1, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Switches()); got != 20 {
		t.Errorf("switches=%d, want 20", got)
	}
	if got := len(g.Hosts()); got != 8 {
		t.Errorf("hosts=%d, want 8", got)
	}
	if _, err := FatTree(0, 1, 1, DefaultLinkParams); err == nil {
		t.Error("invalid shape must fail")
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(20, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Switches()); got != 20 {
		t.Errorf("switches=%d", got)
	}
	if got := len(g.Hosts()); got != 20 {
		t.Errorf("hosts=%d", got)
	}
	if _, err := Ring(2, DefaultLinkParams); err == nil {
		t.Error("tiny ring must fail")
	}
	// Path between opposite hosts takes the short way around: 20-ring,
	// hosts attach to R1 and R11, 10 switch-switch hops either way plus 2
	// host links = 12 nodes... just verify existence and symmetry.
	hosts := g.Hosts()
	p, err := g.ShortestPath(hosts[0], hosts[10])
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 13 { // h, R1..R11 (11 switches), h
		t.Errorf("path len=%d, want 13", len(p))
	}
}

func TestLinear(t *testing.T) {
	g, err := Linear(5, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	p, err := g.ShortestPath(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 7 { // h1, R1..R5, h2
		t.Errorf("path len=%d, want 7", len(p))
	}
	lat, err := g.PathLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 6*DefaultLinkParams.Latency {
		t.Errorf("latency=%v", lat)
	}
	if _, err := Linear(0, DefaultLinkParams); err == nil {
		t.Error("empty linear must fail")
	}
}

func TestShortestPathHostsDoNotRelay(t *testing.T) {
	// Two switches joined only through a host must be unreachable.
	g := NewGraph()
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	h := g.AddHost("h")
	if _, _, err := g.Connect(s1, h, DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Connect(h, s2, DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(s1, s2); err == nil {
		t.Error("path through host must not exist")
	}
	// But from the host itself both switches are reachable.
	if _, err := g.ShortestPath(h, s2); err != nil {
		t.Errorf("host-rooted path must exist: %v", err)
	}
}

func TestSpanningTreePaths(t *testing.T) {
	g, err := TestbedFatTree(DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	root := hosts[0]
	tree, err := g.ShortestPathTree(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Contains(root) {
		t.Fatal("tree must contain root")
	}
	for _, h := range hosts {
		if !tree.Contains(h) {
			t.Fatalf("tree must span host %d", h)
		}
		p, err := tree.PathToRoot(h)
		if err != nil {
			t.Fatal(err)
		}
		if p[len(p)-1] != root {
			t.Fatalf("path must end at root, got %v", p)
		}
	}
	// PathBetween two sibling hosts passes their common ancestor once.
	p, err := tree.PathBetween(hosts[1], hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[NodeID]bool)
	for _, n := range p {
		if seen[n] {
			t.Fatalf("path %v revisits node %d", p, n)
		}
		seen[n] = true
	}
	if p[0] != hosts[1] || p[len(p)-1] != hosts[2] {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if _, err := tree.PathToRoot(NodeID(999)); err == nil {
		t.Error("unknown node must fail")
	}
}

func TestRouteHops(t *testing.T) {
	g, err := Linear(3, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	p, err := g.ShortestPath(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	hops, err := g.RouteHops(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("hops=%v, want 3 switches", hops)
	}
	// Each hop's out port must lead to the next node on the path.
	for i, hop := range hops {
		peer, ok := g.PortToPeer(hop.Switch, hop.OutPort)
		if !ok {
			t.Fatalf("hop %d: invalid port", i)
		}
		found := false
		for _, n := range p {
			if n == peer {
				found = true
			}
		}
		if !found {
			t.Fatalf("hop %d leads to %d which is off-path %v", i, peer, p)
		}
	}
}

func TestPartitionRing(t *testing.T) {
	g, err := Ring(20, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := PartitionRing(g, 4); err != nil {
		t.Fatal(err)
	}
	if got := g.Partitions(); len(got) != 4 {
		t.Errorf("partitions=%v", got)
	}
	for p := 0; p < 4; p++ {
		if got := len(g.SwitchesInPartition(p)); got != 5 {
			t.Errorf("partition %d has %d switches, want 5", p, got)
		}
		if got := len(g.HostsInPartition(p)); got != 5 {
			t.Errorf("partition %d has %d hosts, want 5", p, got)
		}
	}
	// A ring split into 4 arcs has exactly 4 border links.
	if got := len(g.BorderLinks()); got != 4 {
		t.Errorf("border links=%d, want 4", got)
	}
	if err := PartitionRing(g, 0); err == nil {
		t.Error("zero partitions must fail")
	}
	if err := PartitionRing(g, 21); err == nil {
		t.Error("too many partitions must fail")
	}
}

func TestPartitionRingUneven(t *testing.T) {
	g, err := Ring(5, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := PartitionRing(g, 2); err != nil {
		t.Fatal(err)
	}
	total := len(g.SwitchesInPartition(0)) + len(g.SwitchesInPartition(1))
	if total != 5 {
		t.Errorf("switch total=%d", total)
	}
}

func TestPartitionFatTree(t *testing.T) {
	g, err := FatTree(4, 4, 1, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := PartitionFatTree(g, 4); err != nil {
		t.Fatal(err)
	}
	parts := g.Partitions()
	if len(parts) != 4 {
		t.Errorf("partitions=%v", parts)
	}
	if len(g.BorderLinks()) == 0 {
		t.Error("fat-tree partitions must have border links")
	}
	if err := PartitionFatTree(g, 0); err == nil {
		t.Error("zero partitions must fail")
	}
}

func TestDijkstraDeterminism(t *testing.T) {
	g, err := TestbedFatTree(DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	p1, err := g.ShortestPath(hosts[0], hosts[7])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p2, err := g.ShortestPath(hosts[0], hosts[7])
		if err != nil {
			t.Fatal(err)
		}
		if len(p1) != len(p2) {
			t.Fatal("nondeterministic path length")
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatal("nondeterministic path")
			}
		}
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := NewGraph()
	s := g.AddSwitch("s")
	if _, err := g.ShortestPath(NodeID(9), s); err == nil {
		t.Error("unknown source must fail")
	}
	if _, err := g.ShortestPath(s, NodeID(9)); err == nil {
		t.Error("unknown target must fail")
	}
	if _, err := g.ShortestPathTree(NodeID(9), nil); err == nil {
		t.Error("unknown root must fail")
	}
}

func TestPathLatencyError(t *testing.T) {
	g := NewGraph()
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	if _, err := g.PathLatency([]NodeID{a, b}); err == nil {
		t.Error("missing link must fail")
	}
}

func TestSpanningTreeRestricted(t *testing.T) {
	g, err := Ring(6, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := PartitionRing(g, 2); err != nil {
		t.Fatal(err)
	}
	// Tree restricted to partition 0 must not contain partition-1 nodes.
	sw0 := g.SwitchesInPartition(0)
	tree, err := g.ShortestPathTree(sw0[0], func(n NodeID) bool {
		return g.Partition(n) == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tree.Nodes() {
		if g.Partition(n) != 0 {
			t.Errorf("tree contains foreign node %d", n)
		}
	}
}

func TestLinkParamsLatency(t *testing.T) {
	custom := LinkParams{Latency: time.Millisecond, BandwidthBps: 0}
	g, err := Linear(2, custom)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	p, err := g.ShortestPath(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	lat, err := g.PathLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 3*time.Millisecond {
		t.Errorf("latency=%v, want 3ms", lat)
	}
}
