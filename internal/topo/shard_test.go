package topo

import (
	"testing"
	"time"
)

func shardSizes(g *Graph, assign []int32, n int) []int {
	sizes := make([]int, n)
	for _, sw := range g.Switches() {
		sizes[assign[sw]]++
	}
	return sizes
}

// TestShardNodesFatTreeBalancedAndHostLocal pins the partitioner's core
// invariants on the benchmark topology: every node assigned, hosts on
// their switch's shard, and switch counts balanced within one.
func TestShardNodesFatTreeBalancedAndHostLocal(t *testing.T) {
	g, err := FatTree(8, 8, 2, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		assign, got := ShardNodes(g, n)
		if got != n {
			t.Fatalf("ShardNodes(%d) produced %d shards", n, got)
		}
		if err := ValidateShardAssignment(g, assign, got); err != nil {
			t.Fatalf("ShardNodes(%d): %v", n, err)
		}
		sizes := shardSizes(g, assign, got)
		min, max := sizes[0], sizes[0]
		for _, s := range sizes[1:] {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("ShardNodes(%d) imbalanced switch counts %v", n, sizes)
		}
	}
}

// TestShardNodesDeterministic pins reproducibility: the same graph shape
// always yields the identical assignment (the parallel engine's
// fixed-shard-count determinism depends on it).
func TestShardNodesDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := FatTree(4, 4, 2, DefaultLinkParams)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a1, n1 := ShardNodes(build(), 4)
	a2, n2 := ShardNodes(build(), 4)
	if n1 != n2 {
		t.Fatalf("shard counts differ: %d vs %d", n1, n2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("node %d assigned to %d then %d across identical builds", i, a1[i], a2[i])
		}
	}
}

// TestShardNodesClampsToSwitchCount pins the edge cases: more shards than
// switches degrades gracefully, and n<=1 is one shard covering everything.
func TestShardNodesClampsToSwitchCount(t *testing.T) {
	g, err := Ring(3, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	assign, n := ShardNodes(g, 16)
	if n != 3 {
		t.Fatalf("ShardNodes clamped to %d shards, want 3 (one per switch)", n)
	}
	if err := ValidateShardAssignment(g, assign, n); err != nil {
		t.Fatal(err)
	}
	assign, n = ShardNodes(g, 0)
	if n != 1 {
		t.Fatalf("ShardNodes(0) produced %d shards, want 1", n)
	}
	for i, s := range assign {
		if s != 0 {
			t.Fatalf("single-shard assignment has node %d on shard %d", i, s)
		}
	}
}

// TestMinCutLatency pins the lookahead computation: the minimum latency
// among cross-shard links, and false when nothing crosses.
func TestMinCutLatency(t *testing.T) {
	g, err := Ring(4, LinkParams{Latency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// Shorten exactly one ring link; with a 2-shard split it may or may
	// not be a border link, so force an assignment where it is: switches
	// 0,1 on shard 0, switches 2,3 on shard 1. Links 1-2 and 3-0 cross.
	sw := g.Switches()
	l, ok := g.LinkBetween(sw[1], sw[2])
	if !ok {
		t.Fatal("ring link 1-2 missing")
	}
	l.Params.Latency = 30 * time.Microsecond
	assign := make([]int32, g.NumNodes())
	for _, s := range sw[:2] {
		assign[s] = 0
	}
	for _, s := range sw[2:] {
		assign[s] = 1
	}
	for _, h := range g.Hosts() {
		swID, err := g.AttachedSwitch(h)
		if err != nil {
			t.Fatal(err)
		}
		assign[h] = assign[swID]
	}
	la, ok := MinCutLatency(g, assign)
	if !ok || la != 30*time.Microsecond {
		t.Fatalf("MinCutLatency = %v,%v, want 30µs,true", la, ok)
	}
	// All on one shard: no cut.
	for i := range assign {
		assign[i] = 0
	}
	if _, ok := MinCutLatency(g, assign); ok {
		t.Fatal("MinCutLatency found a cut in a single-shard assignment")
	}
}

// TestValidateShardAssignmentRejectsViolations covers the validator's
// error paths.
func TestValidateShardAssignmentRejectsViolations(t *testing.T) {
	g, err := Ring(3, DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	assign, n := ShardNodes(g, 2)
	if err := ValidateShardAssignment(g, assign[:2], n); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := append([]int32(nil), assign...)
	bad[0] = int32(n)
	if err := ValidateShardAssignment(g, bad, n); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	host := g.Hosts()[0]
	bad = append([]int32(nil), assign...)
	bad[host] = (bad[host] + 1) % int32(n)
	if err := ValidateShardAssignment(g, bad, n); err == nil {
		t.Fatal("host split from its switch accepted")
	}
}
