// Package topo models the physical network underneath PLEROMA: switches,
// hosts, and links with latency and bandwidth, organised into one or more
// controller partitions. It provides the graph algorithms the controller
// needs (shortest paths, publisher-rooted shortest-path spanning trees) and
// generators for the paper's evaluation topologies (the testbed fat-tree of
// Figure 6 and the Mininet fat-tree/ring with 20 switches).
package topo

import (
	"fmt"
	"sort"
	"time"

	"pleroma/internal/openflow"
)

// NodeID identifies a node (switch or host) in the graph.
type NodeID int

// NodeKind distinguishes switches from hosts.
type NodeKind int

// Node kinds.
const (
	KindSwitch NodeKind = iota + 1
	KindHost
)

func (k NodeKind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindHost:
		return "host"
	default:
		return "unknown"
	}
}

// Node is a vertex of the topology.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Partition is the controller domain the node belongs to.
	Partition int
}

// LinkParams carries the physical properties of a link.
type LinkParams struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the link capacity in bits per second; zero means
	// unlimited (no serialization delay).
	BandwidthBps int64
	// QueuePackets bounds the per-direction transmit queue; packets
	// arriving at a full queue are tail-dropped. Zero means unbounded.
	QueuePackets int
}

// DefaultLinkParams mirrors a 1 GbE datacenter link with a short cable.
var DefaultLinkParams = LinkParams{
	Latency:      50 * time.Microsecond,
	BandwidthBps: 1_000_000_000,
}

// Link is an undirected edge between two nodes, attached to one port on
// each side.
type Link struct {
	A, B         NodeID
	APort, BPort openflow.PortID
	Params       LinkParams
	// Down marks a failed link: path computation avoids it and the data
	// plane drops packets sent over it.
	Down bool
}

// Other returns the endpoint opposite to n.
func (l Link) Other(n NodeID) (NodeID, bool) {
	switch n {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	default:
		return 0, false
	}
}

// PortAt returns the port of the link at node n.
func (l Link) PortAt(n NodeID) (openflow.PortID, bool) {
	switch n {
	case l.A:
		return l.APort, true
	case l.B:
		return l.BPort, true
	default:
		return 0, false
	}
}

// Neighbor describes one adjacency of a node.
type Neighbor struct {
	Peer NodeID
	Port openflow.PortID
	Link *Link
}

// Graph is the network topology. It is not safe for concurrent mutation.
type Graph struct {
	nodes []Node
	links []*Link
	// adj maps node -> neighbors ordered by local port.
	adj map[NodeID][]Neighbor
	// nextPort tracks per-node port allocation (ports start at 1).
	nextPort map[NodeID]openflow.PortID
	// version counts structural mutations (nodes and links added). Layers
	// that precompute dense views of the adjacency — the data plane's
	// forwarding plan — compare it against the version they compiled from
	// and rebuild when stale. Link state flips (Down) are not structural:
	// they are read live and do not bump the version.
	version uint64
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		adj:      make(map[NodeID][]Neighbor),
		nextPort: make(map[NodeID]openflow.PortID),
	}
}

// AddSwitch adds a switch node and returns its ID.
func (g *Graph) AddSwitch(name string) NodeID {
	return g.addNode(name, KindSwitch)
}

// AddHost adds a host node and returns its ID.
func (g *Graph) AddHost(name string) NodeID {
	return g.addNode(name, KindHost)
}

func (g *Graph) addNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name})
	g.nextPort[id] = 1
	g.version++
	return id
}

// Version returns the structural mutation counter: it changes whenever a
// node or link is added, and consumers holding precomputed adjacency (the
// data plane's forwarding plan) use it to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return Node{}, fmt.Errorf("topo: unknown node %d", id)
	}
	return g.nodes[id], nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Connect links two nodes with the given parameters and returns the ports
// allocated on each side.
func (g *Graph) Connect(a, b NodeID, params LinkParams) (aPort, bPort openflow.PortID, err error) {
	if _, err := g.Node(a); err != nil {
		return 0, 0, err
	}
	if _, err := g.Node(b); err != nil {
		return 0, 0, err
	}
	if a == b {
		return 0, 0, fmt.Errorf("topo: self-link on node %d", a)
	}
	aPort = g.nextPort[a]
	bPort = g.nextPort[b]
	g.nextPort[a]++
	g.nextPort[b]++
	l := &Link{A: a, B: b, APort: aPort, BPort: bPort, Params: params}
	g.links = append(g.links, l)
	g.adj[a] = append(g.adj[a], Neighbor{Peer: b, Port: aPort, Link: l})
	g.adj[b] = append(g.adj[b], Neighbor{Peer: a, Port: bPort, Link: l})
	g.version++
	return aPort, bPort, nil
}

// Neighbors returns the adjacencies of a node, ordered by local port.
func (g *Graph) Neighbors(n NodeID) []Neighbor {
	return g.adj[n]
}

// PortToPeer resolves a local port to the peer node reachable through it.
func (g *Graph) PortToPeer(n NodeID, port openflow.PortID) (NodeID, bool) {
	for _, nb := range g.adj[n] {
		if nb.Port == port {
			return nb.Peer, true
		}
	}
	return 0, false
}

// PortTowards returns the local port on from that leads directly to peer.
func (g *Graph) PortTowards(from, peer NodeID) (openflow.PortID, bool) {
	for _, nb := range g.adj[from] {
		if nb.Peer == peer {
			return nb.Port, true
		}
	}
	return 0, false
}

// LinkBetween returns the link connecting the two nodes.
func (g *Graph) LinkBetween(a, b NodeID) (*Link, bool) {
	for _, nb := range g.adj[a] {
		if nb.Peer == b {
			return nb.Link, true
		}
	}
	return nil, false
}

// Links returns all links.
func (g *Graph) Links() []*Link { return g.links }

// Nodes returns a copy of all nodes.
func (g *Graph) Nodes() []Node {
	return append([]Node(nil), g.nodes...)
}

// Switches returns the IDs of all switch nodes, ascending.
func (g *Graph) Switches() []NodeID { return g.byKind(KindSwitch) }

// Hosts returns the IDs of all host nodes, ascending.
func (g *Graph) Hosts() []NodeID { return g.byKind(KindHost) }

func (g *Graph) byKind(k NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// AttachedSwitch returns the switch a host is connected to. Hosts are
// expected to have exactly one link.
func (g *Graph) AttachedSwitch(host NodeID) (NodeID, error) {
	n, err := g.Node(host)
	if err != nil {
		return 0, err
	}
	if n.Kind != KindHost {
		return 0, fmt.Errorf("topo: node %d (%s) is not a host", host, n.Name)
	}
	for _, nb := range g.adj[host] {
		if g.nodes[nb.Peer].Kind == KindSwitch {
			return nb.Peer, nil
		}
	}
	return 0, fmt.Errorf("topo: host %d (%s) has no attached switch", host, n.Name)
}

// SetPartition assigns a node to a controller partition.
func (g *Graph) SetPartition(n NodeID, p int) error {
	if _, err := g.Node(n); err != nil {
		return err
	}
	g.nodes[n].Partition = p
	return nil
}

// Partition returns the partition of a node.
func (g *Graph) Partition(n NodeID) int { return g.nodes[n].Partition }

// Partitions returns the sorted list of distinct partition IDs.
func (g *Graph) Partitions() []int {
	seen := make(map[int]bool)
	for _, n := range g.nodes {
		seen[n.Partition] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// SwitchesInPartition returns the switch IDs of one partition, ascending.
func (g *Graph) SwitchesInPartition(p int) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindSwitch && n.Partition == p {
			out = append(out, n.ID)
		}
	}
	return out
}

// HostsInPartition returns the host IDs of one partition, ascending.
func (g *Graph) HostsInPartition(p int) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindHost && n.Partition == p {
			out = append(out, n.ID)
		}
	}
	return out
}

// SetLinkState marks the link between two nodes as failed or restored.
func (g *Graph) SetLinkState(a, b NodeID, down bool) error {
	l, ok := g.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("topo: no link between %d and %d", a, b)
	}
	l.Down = down
	return nil
}

// BorderLinks returns the links whose switch endpoints belong to different
// partitions — the inter-partition attachment points of Section 4.
func (g *Graph) BorderLinks() []*Link {
	var out []*Link
	for _, l := range g.links {
		na, nb := g.nodes[l.A], g.nodes[l.B]
		if na.Kind == KindSwitch && nb.Kind == KindSwitch && na.Partition != nb.Partition {
			out = append(out, l)
		}
	}
	return out
}

// InheritHostPartitions assigns every host the partition of its attached
// switch.
func (g *Graph) InheritHostPartitions() error {
	for _, h := range g.Hosts() {
		sw, err := g.AttachedSwitch(h)
		if err != nil {
			return err
		}
		g.nodes[h].Partition = g.nodes[sw].Partition
	}
	return nil
}
