package topo

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"pleroma/internal/openflow"
)

// pathItem is a priority-queue entry for Dijkstra.
type pathItem struct {
	node NodeID
	dist time.Duration
	hops int
}

type pathHeap []pathItem

func (h pathHeap) Len() int { return len(h) }

func (h pathHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	return h[i].node < h[j].node
}

func (h pathHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *pathHeap) Push(x any) {
	it, ok := x.(pathItem)
	if !ok {
		return
	}
	*h = append(*h, it)
}

func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// tieHash mixes the root and a candidate parent into a deterministic but
// root-dependent ordering. Different spanning-tree roots therefore spread
// across equal-cost paths (ECMP-style), which is what lets PLEROMA's
// multiple trees balance link load (Section 3.1); a fixed lowest-ID rule
// would collapse every tree onto the same edges.
func tieHash(root, candidate NodeID) uint64 {
	x := uint64(root)*0x9e3779b97f4a7c15 ^ uint64(candidate)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// dijkstra computes shortest latency distances and deterministic parent
// pointers from root, visiting only nodes accepted by include (nil accepts
// everything). Ties are broken by hop count, then by a root-salted hash,
// so results are reproducible per root but diverse across roots.
func (g *Graph) dijkstra(root NodeID, include func(NodeID) bool) (map[NodeID]NodeID, map[NodeID]time.Duration) {
	parent := make(map[NodeID]NodeID)
	dist := make(map[NodeID]time.Duration)
	hops := make(map[NodeID]int)
	visited := make(map[NodeID]bool)
	pq := &pathHeap{{node: root, dist: 0, hops: 0}}
	dist[root] = 0
	parent[root] = root
	for pq.Len() > 0 {
		it, _ := heap.Pop(pq).(pathItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		// Hosts never relay traffic: they may only be leaves of any path.
		if g.nodes[it.node].Kind == KindHost && it.node != root {
			continue
		}
		for _, nb := range g.adj[it.node] {
			if nb.Link.Down {
				continue
			}
			if include != nil && !include(nb.Peer) {
				continue
			}
			nd := it.dist + nb.Link.Params.Latency
			nh := it.hops + 1
			old, seen := dist[nb.Peer]
			better := !seen || nd < old ||
				(nd == old && (nh < hops[nb.Peer] ||
					(nh == hops[nb.Peer] &&
						tieHash(root, it.node) < tieHash(root, parent[nb.Peer]))))
			if better && !visited[nb.Peer] {
				dist[nb.Peer] = nd
				hops[nb.Peer] = nh
				parent[nb.Peer] = it.node
				heap.Push(pq, pathItem{node: nb.Peer, dist: nd, hops: nh})
			}
		}
	}
	return parent, dist
}

// ShortestPath returns the minimum-latency node sequence from a to b
// (inclusive). Hosts other than the endpoints never relay.
func (g *Graph) ShortestPath(a, b NodeID) ([]NodeID, error) {
	if _, err := g.Node(a); err != nil {
		return nil, err
	}
	if _, err := g.Node(b); err != nil {
		return nil, err
	}
	parent, dist := g.dijkstra(a, nil)
	if _, ok := dist[b]; !ok {
		return nil, fmt.Errorf("topo: no path from %d to %d", a, b)
	}
	var rev []NodeID
	for n := b; ; n = parent[n] {
		rev = append(rev, n)
		if n == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path, nil
}

// PathLatency sums the link latencies along a node path.
func (g *Graph) PathLatency(path []NodeID) (time.Duration, error) {
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		l, ok := g.LinkBetween(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("topo: no link between %d and %d", path[i], path[i+1])
		}
		total += l.Params.Latency
	}
	return total, nil
}

// SpanningTree is a rooted tree embedded in the graph; PLEROMA builds one
// per dissemination tree, rooted at the publisher that created it
// (Section 3.2).
type SpanningTree struct {
	Root NodeID
	// parent maps every reachable node to its parent; the root maps to
	// itself.
	parent map[NodeID]NodeID
	g      *Graph
}

// ShortestPathTree builds a shortest-path spanning tree rooted at root,
// covering every node accepted by include (nil covers all).
func (g *Graph) ShortestPathTree(root NodeID, include func(NodeID) bool) (*SpanningTree, error) {
	if _, err := g.Node(root); err != nil {
		return nil, err
	}
	parent, _ := g.dijkstra(root, include)
	return &SpanningTree{Root: root, parent: parent, g: g}, nil
}

// Contains reports whether the node is part of the tree.
func (t *SpanningTree) Contains(n NodeID) bool {
	_, ok := t.parent[n]
	return ok
}

// Parent returns the tree parent of n (the root's parent is itself).
func (t *SpanningTree) Parent(n NodeID) (NodeID, bool) {
	p, ok := t.parent[n]
	return p, ok
}

// Nodes returns all nodes of the tree in ascending ID order.
func (t *SpanningTree) Nodes() []NodeID {
	out := make([]NodeID, 0, len(t.parent))
	for n := range t.parent {
		out = append(out, n)
	}
	sortNodeIDs(out)
	return out
}

// PathToRoot returns the node sequence from n up to the root (inclusive).
func (t *SpanningTree) PathToRoot(n NodeID) ([]NodeID, error) {
	if !t.Contains(n) {
		return nil, fmt.Errorf("topo: node %d not in tree rooted at %d", n, t.Root)
	}
	var path []NodeID
	for cur := n; ; {
		path = append(path, cur)
		if cur == t.Root {
			return path, nil
		}
		next := t.parent[cur]
		if next == cur {
			return path, nil
		}
		cur = next
	}
}

// PathBetween returns the unique tree path from a to b (inclusive): up from
// a to the lowest common ancestor, then down to b.
func (t *SpanningTree) PathBetween(a, b NodeID) ([]NodeID, error) {
	pa, err := t.PathToRoot(a)
	if err != nil {
		return nil, err
	}
	pb, err := t.PathToRoot(b)
	if err != nil {
		return nil, err
	}
	onPA := make(map[NodeID]int, len(pa))
	for i, n := range pa {
		onPA[n] = i
	}
	// Find the first node of pb that is on pa: the LCA.
	for j, n := range pb {
		if i, ok := onPA[n]; ok {
			path := make([]NodeID, 0, i+j+1)
			path = append(path, pa[:i+1]...)
			for k := j - 1; k >= 0; k-- {
				path = append(path, pb[k])
			}
			return path, nil
		}
	}
	return nil, fmt.Errorf("topo: nodes %d and %d share no ancestor in tree %d", a, b, t.Root)
}

// Hop is one forwarding step of a route: a switch and the out port a
// matching packet leaves through.
type Hop struct {
	Switch  NodeID
	OutPort openflow.PortID
}

// RouteHops converts a node path into the list of (switch, out-port) pairs
// the controller must program: for every switch on the path (excluding
// hosts) the port towards the next node.
func (g *Graph) RouteHops(path []NodeID) ([]Hop, error) {
	var hops []Hop
	for i := 0; i+1 < len(path); i++ {
		n, err := g.Node(path[i])
		if err != nil {
			return nil, err
		}
		if n.Kind != KindSwitch {
			continue
		}
		port, ok := g.PortTowards(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("topo: no port from %d towards %d", path[i], path[i+1])
		}
		hops = append(hops, Hop{Switch: path[i], OutPort: port})
	}
	return hops, nil
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
