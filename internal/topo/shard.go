package topo

import (
	"fmt"
	"time"
)

// ShardNodes partitions the topology's nodes across n simulation shards
// for the parallel engine, returning a dense NodeID→shard assignment.
// The goals, in order: (1) hosts land on the shard of their attached
// switch, so host arrivals and deliveries are always shard-local; (2)
// switch shards are contiguous regions (balanced BFS growth from
// farthest-point seeds), so most forwarding hops stay inside one shard
// and only region-border links carry cross-shard traffic; (3) shard
// sizes stay balanced so barrier windows don't serialize on one
// overloaded engine. The algorithm is deterministic: identical graphs
// always produce identical assignments, which the engine's reproducible
// (time, seq) ordering depends on.
//
// n is clamped to the number of switches; the returned shard count is
// max over the assignment + 1.
func ShardNodes(g *Graph, n int) ([]int32, int) {
	switches := g.Switches()
	if n > len(switches) {
		n = len(switches)
	}
	if n < 1 {
		n = 1
	}
	assign := make([]int32, g.NumNodes())
	for i := range assign {
		assign[i] = -1
	}
	if n == 1 {
		for i := range assign {
			assign[i] = 0
		}
		return assign, 1
	}

	// Seed selection: farthest-point traversal over hop distance. The
	// first seed is the lowest switch ID; each next seed is the switch
	// maximizing its minimum hop distance to the seeds chosen so far
	// (lowest ID breaks ties). On a fat-tree this naturally lands seeds
	// in distinct pods.
	dist := make([]int, g.NumNodes())
	minDist := make([]int, g.NumNodes())
	const inf = int(^uint(0) >> 1)
	for i := range minDist {
		minDist[i] = inf
	}
	bfsHops := func(src NodeID) {
		for i := range dist {
			dist[i] = inf
		}
		dist[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(u) {
				if dist[nb.Peer] == inf {
					dist[nb.Peer] = dist[u] + 1
					queue = append(queue, nb.Peer)
				}
			}
		}
	}
	seeds := make([]NodeID, 0, n)
	seeds = append(seeds, switches[0])
	for len(seeds) < n {
		bfsHops(seeds[len(seeds)-1])
		best, bestDist := NodeID(-1), -1
		for _, sw := range switches {
			if dist[sw] < minDist[sw] {
				minDist[sw] = dist[sw]
			}
		}
		for _, sw := range switches {
			taken := false
			for _, s := range seeds {
				if s == sw {
					taken = true
					break
				}
			}
			if !taken && minDist[sw] > bestDist {
				best, bestDist = sw, minDist[sw]
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
	}

	// Balanced multi-source BFS growth: each round, the smallest region
	// (lowest shard index on ties) claims its next unassigned frontier
	// switch. Round-robin by size keeps regions within one node of each
	// other while preserving contiguity where the topology allows it.
	frontiers := make([][]NodeID, len(seeds))
	sizes := make([]int, len(seeds))
	for i, s := range seeds {
		assign[s] = int32(i)
		sizes[i] = 1
		frontiers[i] = []NodeID{s}
	}
	remaining := len(switches) - len(seeds)
	for remaining > 0 {
		// Pick the smallest region that still has a reachable frontier.
		shardOrder := make([]int, 0, len(seeds))
		for i := range seeds {
			shardOrder = append(shardOrder, i)
		}
		progressed := false
		for pass := 0; pass < len(seeds) && remaining > 0; pass++ {
			smallest := -1
			for _, i := range shardOrder {
				if i >= 0 && (smallest < 0 || sizes[i] < sizes[smallest]) {
					smallest = i
				}
			}
			if smallest < 0 {
				break
			}
			// Remove from this round's order regardless of outcome.
			for j, v := range shardOrder {
				if v == smallest {
					shardOrder[j] = -1
				}
			}
			claimed := claimNextSwitch(g, assign, &frontiers[smallest], int32(smallest))
			if claimed {
				sizes[smallest]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			// Disconnected leftovers (no frontier reaches them): sweep
			// them into the smallest region by ascending ID.
			for _, sw := range switches {
				if assign[sw] < 0 {
					smallest := 0
					for i := range sizes {
						if sizes[i] < sizes[smallest] {
							smallest = i
						}
					}
					assign[sw] = int32(smallest)
					sizes[smallest]++
					remaining--
				}
			}
		}
	}

	// Hosts follow their attached switch so arrivals are shard-local.
	for _, h := range g.Hosts() {
		if sw, err := g.AttachedSwitch(h); err == nil {
			assign[h] = assign[sw]
		} else {
			assign[h] = 0
		}
	}
	// Any stragglers (isolated nodes) land on shard 0.
	for i := range assign {
		if assign[i] < 0 {
			assign[i] = 0
		}
	}
	return assign, len(seeds)
}

// claimNextSwitch pops the region's BFS frontier until it claims one
// unassigned switch (expanding the frontier as it goes) and reports
// whether it succeeded. Neighbors are visited in port order, which is
// deterministic construction order.
func claimNextSwitch(g *Graph, assign []int32, frontier *[]NodeID, shard int32) bool {
	queue := *frontier
	for len(queue) > 0 {
		u := queue[0]
		for _, nb := range g.Neighbors(u) {
			peer := nb.Peer
			if node, err := g.Node(peer); err != nil || node.Kind != KindSwitch {
				continue
			}
			if assign[peer] < 0 {
				assign[peer] = shard
				queue = append(queue, peer)
				*frontier = queue
				return true
			}
		}
		queue = queue[1:]
	}
	*frontier = queue
	return false
}

// MinCutLatency returns the minimum latency over links whose endpoints
// live on different shards — the conservative lookahead of the parallel
// engine: no cross-shard interaction can take effect sooner than this
// after it is sent. Returns (0, false) if no link crosses a shard
// boundary (single shard, or disconnected regions), in which case the
// caller should fall back to serialized execution semantics.
func MinCutLatency(g *Graph, assign []int32) (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, l := range g.Links() {
		if assign[l.A] == assign[l.B] {
			continue
		}
		if !found || l.Params.Latency < min {
			min, found = l.Params.Latency, true
		}
	}
	return min, found
}

// ValidateShardAssignment checks the invariants the data plane relies
// on: every node assigned, shard indices in [0, n), and every host on
// its attached switch's shard.
func ValidateShardAssignment(g *Graph, assign []int32, n int) error {
	if len(assign) != g.NumNodes() {
		return fmt.Errorf("topo: assignment covers %d nodes, graph has %d", len(assign), g.NumNodes())
	}
	for id, s := range assign {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("topo: node %d assigned to shard %d of %d", id, s, n)
		}
	}
	for _, h := range g.Hosts() {
		sw, err := g.AttachedSwitch(h)
		if err != nil {
			continue
		}
		if assign[h] != assign[sw] {
			return fmt.Errorf("topo: host %d on shard %d but its switch %d is on shard %d",
				h, assign[h], sw, assign[sw])
		}
	}
	return nil
}
