package dimsel

import (
	"fmt"
	"math"
)

// jacobiEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvalues and the
// matrix of eigenvectors (column i corresponds to eigenvalue i), both
// unsorted. The input is not modified.
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("dimsel: empty matrix")
	}
	for i, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("dimsel: matrix is not square (row %d has %d cols, want %d)", i, len(row), n)
		}
	}
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	// Verify symmetry (within tolerance).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m[i][j]-m[j][i]) > 1e-9*(1+math.Abs(m[i][j])) {
				return nil, nil, fmt.Errorf("dimsel: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	v := identity(n)

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	return values, v, nil
}

// rotate applies the Jacobi rotation (p,q,c,s) to matrix m and accumulates
// it into the eigenvector matrix v.
func rotate(m, v [][]float64, p, q int, c, s float64) {
	n := len(m)
	for i := 0; i < n; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m[p][j], m[q][j]
		m[p][j] = c*mpj - s*mqj
		m[q][j] = s*mpj + c*mqj
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

// centerRows subtracts each row's mean from its entries, returning a new
// matrix (the paper's centred matrix W̃).
func centerRows(w [][]float64) [][]float64 {
	out := make([][]float64, len(w))
	for i, row := range w {
		mean := 0.0
		for _, x := range row {
			mean += x
		}
		if len(row) > 0 {
			mean /= float64(len(row))
		}
		out[i] = make([]float64, len(row))
		for j, x := range row {
			out[i][j] = x - mean
		}
	}
	return out
}

// covariance computes C = W̃ · W̃ᵀ for a row-centred matrix.
func covariance(w [][]float64) [][]float64 {
	n := len(w)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			sum := 0.0
			for k := range w[i] {
				sum += w[i][k] * w[j][k]
			}
			c[i][j] = sum
			c[j][i] = sum
		}
	}
	return c
}
