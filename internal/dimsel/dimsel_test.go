package dimsel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

func TestJacobiDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 1}}
	values, vectors, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), values...)
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("values=%v, want [3 1]", values)
	}
	_ = vectors
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	values, _, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(values[0], values[1]), math.Max(values[0], values[1])
	if math.Abs(hi-3) > 1e-9 || math.Abs(lo-1) > 1e-9 {
		t.Errorf("values=%v, want {1,3}", values)
	}
}

func TestJacobiValidation(t *testing.T) {
	if _, _, err := jacobiEigen(nil); err == nil {
		t.Error("empty must fail")
	}
	if _, _, err := jacobiEigen([][]float64{{1, 2}}); err == nil {
		t.Error("non-square must fail")
	}
	if _, _, err := jacobiEigen([][]float64{{1, 2}, {3, 1}}); err == nil {
		t.Error("asymmetric must fail")
	}
}

// TestPropertyEigenEquation: A·v = λ·v for random symmetric matrices, and
// eigenvectors are orthonormal.
func TestPropertyEigenEquation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := r.NormFloat64() * 10
				a[i][j] = x
				a[j][i] = x
			}
		}
		values, vectors, err := jacobiEigen(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			// Check A·v_k = λ_k·v_k.
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a[i][j] * vectors[j][k]
				}
				if math.Abs(av-values[k]*vectors[i][k]) > 1e-6 {
					return false
				}
			}
			// Check normalisation and orthogonality.
			for l := k; l < n; l++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += vectors[i][k] * vectors[i][l]
				}
				want := 0.0
				if k == l {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectPrefersHighVarianceDimension(t *testing.T) {
	// Dimension 0: match counts vary wildly between events; dimension 1:
	// constant. Dimension 0 must rank first.
	w := [][]float64{
		{10, 0, 10, 0, 10, 0},
		{5, 5, 5, 5, 5, 5},
	}
	res, err := Select(w, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranking[0] != 0 {
		t.Errorf("ranking=%v, want dim 0 first", res.Ranking)
	}
	if res.K != 1 {
		t.Errorf("K=%d, want 1 (dim 1 contributes nothing)", res.K)
	}
	if res.Selected[0] != 0 {
		t.Errorf("Selected=%v", res.Selected)
	}
	if res.Eigenvalues[0] <= res.Eigenvalues[len(res.Eigenvalues)-1] {
		t.Error("eigenvalues must be descending")
	}
}

func TestSelectThresholdControlsK(t *testing.T) {
	// Two equally variable, uncorrelated dimensions: low threshold picks
	// one, high threshold picks both... with equal variability the
	// principal eigenvector may favour one; use threshold 1.0 to force all
	// contributing dimensions in.
	w := [][]float64{
		{9, 0, 9, 0},
		{0, 7, 0, 7},
		{3, 3, 3, 3},
	}
	low, err := Select(w, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Select(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if low.K > high.K {
		t.Errorf("K must grow with threshold: %d vs %d", low.K, high.K)
	}
	if high.K < 2 {
		t.Errorf("high threshold K=%d, want ≥2", high.K)
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := Select(nil, 0.5); err == nil {
		t.Error("empty matrix must fail")
	}
	if _, err := Select([][]float64{{1}}, 0); err == nil {
		t.Error("zero threshold must fail")
	}
	if _, err := Select([][]float64{{1}}, 1.5); err == nil {
		t.Error("threshold >1 must fail")
	}
	if _, err := Select([][]float64{{1, 2}, {1}}, 0.5); err == nil {
		t.Error("ragged matrix must fail")
	}
	if _, err := Select([][]float64{{}, {}}, 0.5); err == nil {
		t.Error("no events must fail")
	}
}

func TestBuildMatrix(t *testing.T) {
	subs := []dz.Rect{
		{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 100}},
		{{Lo: 5, Hi: 20}, {Lo: 50, Hi: 60}},
	}
	events := []space.Event{
		{Values: []uint32{7, 55}},  // dim0: both; dim1: both
		{Values: []uint32{0, 99}},  // dim0: first; dim1: first
		{Values: []uint32{30, 55}}, // dim0: none; dim1: both
	}
	w, err := BuildMatrix(subs, events)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{2, 1, 0},
		{2, 1, 2},
	}
	for d := range want {
		for e := range want[d] {
			if w[d][e] != want[d][e] {
				t.Errorf("w[%d][%d]=%v, want %v", d, e, w[d][e], want[d][e])
			}
		}
	}
}

func TestBuildMatrixValidation(t *testing.T) {
	if _, err := BuildMatrix(nil, nil); err == nil {
		t.Error("no events must fail")
	}
	subs := []dz.Rect{{{Lo: 0, Hi: 1}}}
	events := []space.Event{{Values: []uint32{1, 2}}}
	if _, err := BuildMatrix(subs, events); err == nil {
		t.Error("dims mismatch must fail")
	}
	ev2 := []space.Event{{Values: []uint32{1}}, {Values: []uint32{1, 2}}}
	if _, err := BuildMatrix([]dz.Rect{{{Lo: 0, Hi: 1}}}, ev2); err == nil {
		t.Error("ragged events must fail")
	}
}

func TestSelectFromWorkloadEndToEnd(t *testing.T) {
	// Subscriptions are selective on dimension 0 (narrow, scattered
	// ranges) and unconstrained on dimension 1. Events sweep both
	// dimensions uniformly: dimension 0 must be selected.
	r := rand.New(rand.NewSource(5))
	var subs []dz.Rect
	for i := 0; i < 40; i++ {
		lo := uint32(r.Intn(1000))
		subs = append(subs, dz.Rect{
			{Lo: lo, Hi: lo + 20},
			{Lo: 0, Hi: 1023},
		})
	}
	var events []space.Event
	for i := 0; i < 100; i++ {
		events = append(events, space.Event{Values: []uint32{
			uint32(r.Intn(1024)), uint32(r.Intn(1024)),
		}})
	}
	res, err := SelectFromWorkload(subs, events, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranking[0] != 0 {
		t.Errorf("dimension 0 (selective) must rank first: %v (coeffs %v)", res.Ranking, res.Coefficients)
	}
}

func BenchmarkSelect10x1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := make([][]float64, 10)
	for d := range w {
		w[d] = make([]float64, 1000)
		for e := range w[d] {
			w[d][e] = float64(r.Intn(100))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(w, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}
