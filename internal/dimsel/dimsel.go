// Package dimsel implements PLEROMA's dimension selection (Section 5):
// out of the full attribute set Ω, it picks the subset Ω_D that is most
// effective for in-network filtering. The criterion is the variability of
// the subscription sets matched by recent event traffic along each
// dimension: a PCA over the per-dimension match-count matrix W ranks the
// original dimensions by the magnitude of their coefficient in the
// principal eigenvector (the feature-selection scheme of Malhi & Gao the
// paper adopts), and the smallest k whose coefficient mass exceeds an
// administrator threshold wins.
package dimsel

import (
	"fmt"
	"math"
	"sort"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

// Result reports the outcome of a dimension-selection round.
type Result struct {
	// Ranking lists all dimensions, most important first.
	Ranking []int
	// Coefficients holds |q_i| of the principal eigenvector per original
	// dimension.
	Coefficients []float64
	// K is the number of selected dimensions.
	K int
	// Selected is the first K entries of Ranking (the Ω_D set).
	Selected []int
	// Eigenvalues of the covariance matrix, descending.
	Eigenvalues []float64
}

// Select runs the Section 5 pipeline on a match-count matrix w, where
// w[d][e] = |S^e_d| is the number of subscriptions matched by event e
// along dimension d. threshold ∈ (0,1] is the coefficient-mass cut-off for
// choosing k.
func Select(w [][]float64, threshold float64) (Result, error) {
	if len(w) == 0 {
		return Result{}, fmt.Errorf("dimsel: empty match matrix")
	}
	if threshold <= 0 || threshold > 1 {
		return Result{}, fmt.Errorf("dimsel: threshold %v out of (0,1]", threshold)
	}
	cols := len(w[0])
	for d, row := range w {
		if len(row) != cols {
			return Result{}, fmt.Errorf("dimsel: ragged matrix at row %d", d)
		}
	}
	if cols == 0 {
		return Result{}, fmt.Errorf("dimsel: match matrix has no events")
	}

	centred := centerRows(w)
	cov := covariance(centred)
	values, vectors, err := jacobiEigen(cov)
	if err != nil {
		return Result{}, err
	}

	n := len(values)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]] > values[order[j]] })

	principal := order[0]
	coeffs := make([]float64, n)
	total := 0.0
	for d := 0; d < n; d++ {
		coeffs[d] = math.Abs(vectors[d][principal])
		total += coeffs[d]
	}

	ranking := make([]int, n)
	for i := range ranking {
		ranking[i] = i
	}
	sort.Slice(ranking, func(i, j int) bool {
		if coeffs[ranking[i]] != coeffs[ranking[j]] {
			return coeffs[ranking[i]] > coeffs[ranking[j]]
		}
		return ranking[i] < ranking[j]
	})

	k := n
	if total > 0 {
		mass := 0.0
		for i, d := range ranking {
			mass += coeffs[d]
			if mass/total >= threshold {
				k = i + 1
				break
			}
		}
	}

	eigs := make([]float64, n)
	for i, o := range order {
		eigs[i] = values[o]
	}
	return Result{
		Ranking:      ranking,
		Coefficients: coeffs,
		K:            k,
		Selected:     append([]int(nil), ranking[:k]...),
		Eigenvalues:  eigs,
	}, nil
}

// BuildMatrix derives the match-count matrix from subscription rectangles
// and a window of recent events: w[d][e] counts the subscriptions whose
// range along dimension d contains event e's value on d.
func BuildMatrix(subs []dz.Rect, events []space.Event) ([][]float64, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("dimsel: no events in window")
	}
	dims := len(events[0].Values)
	for _, s := range subs {
		if len(s) != dims {
			return nil, fmt.Errorf("dimsel: subscription dims %d != event dims %d", len(s), dims)
		}
	}
	w := make([][]float64, dims)
	for d := range w {
		w[d] = make([]float64, len(events))
	}
	for e, ev := range events {
		if len(ev.Values) != dims {
			return nil, fmt.Errorf("dimsel: event %d has %d dims, want %d", e, len(ev.Values), dims)
		}
		for d := 0; d < dims; d++ {
			count := 0.0
			for _, s := range subs {
				if s[d].Contains(ev.Values[d]) {
					count++
				}
			}
			w[d][e] = count
		}
	}
	return w, nil
}

// SelectFromWorkload is the convenience composition: build W from the
// current subscriptions and the recent event window, then select Ω_D.
func SelectFromWorkload(subs []dz.Rect, events []space.Event, threshold float64) (Result, error) {
	w, err := BuildMatrix(subs, events)
	if err != nil {
		return Result{}, err
	}
	return Select(w, threshold)
}
