package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersOrderAndValues(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if got := c.Get("b"); got != 5 {
		t.Errorf("b = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names = %v, want [b a] (first-Add order)", names)
	}
	tbl := c.Table("t")
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "b" || tbl.Rows[0][1] != "5" {
		t.Errorf("table rows = %v", tbl.Rows)
	}
}

// TestCountersConcurrent hammers one Counters from many goroutines; run
// with -race (make check does) to verify the locking.
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add("shared", 1)
				c.Add([]string{"x", "y", "z"}[w%3], 1)
				_ = c.Get("shared")
				_ = c.Names()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get("shared"); got != workers*perWorker {
		t.Errorf("shared = %d, want %d", got, workers*perWorker)
	}
	var sum uint64
	for _, n := range []string{"x", "y", "z"} {
		sum += c.Get(n)
	}
	if sum != workers*perWorker {
		t.Errorf("per-worker counters sum = %d, want %d", sum, workers*perWorker)
	}
	if got := c.Table("t"); len(got.Rows) != 4 {
		t.Errorf("table has %d rows, want 4", len(got.Rows))
	}
}

func TestPercentileEdges(t *testing.T) {
	var l Latency
	for _, d := range []time.Duration{30, 10, 20} {
		l.Add(d)
	}
	if got := l.Percentile(0); got != 10 {
		t.Errorf("p0 = %v, want 10 (smallest sample)", got)
	}
	if got := l.Percentile(1); got != 30 {
		t.Errorf("p1 = %v, want 30 (largest sample)", got)
	}
	if got := l.Percentile(-0.5); got != 10 {
		t.Errorf("p<0 clamps to p0: got %v", got)
	}
	if got := l.Percentile(2); got != 30 {
		t.Errorf("p>1 clamps to p1: got %v", got)
	}

	var one Latency
	one.Add(7)
	for _, p := range []float64{0, 0.5, 1} {
		if got := one.Percentile(p); got != 7 {
			t.Errorf("single-sample p%.1f = %v, want 7", p, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h, err := NewHistogram(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{5, 15, 20, 1000} {
		h.Add(d)
	}
	bks := h.Buckets()
	if len(bks) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(bks))
	}
	// [0,10): 5 — [10,20): 15 — overflow: 20 (bound is exclusive) and 1000.
	if bks[0].Count != 1 || bks[1].Count != 1 || bks[2].Count != 2 {
		t.Errorf("bucket counts = %d/%d/%d, want 1/1/2", bks[0].Count, bks[1].Count, bks[2].Count)
	}
	if bks[2].Bound != 0 {
		t.Errorf("overflow bucket bound = %v, want 0 sentinel", bks[2].Bound)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d, want 4", h.Total())
	}
	if !strings.Contains(h.String(), "+inf") {
		t.Errorf("rendering lacks +inf row:\n%s", h.String())
	}
}

func TestTableFprintRaggedRows(t *testing.T) {
	tbl := &Table{Title: "ragged", Columns: []string{"a", "bb"}}
	tbl.AddRow("1")                  // short row
	tbl.AddRow("1", "2", "3", "444") // long row
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("line count = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "444") {
		t.Errorf("extra cells dropped: %q", lines[4])
	}
	if strings.HasSuffix(lines[3], " ") {
		t.Errorf("trailing padding not trimmed: %q", lines[3])
	}
}
