package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Count() != 0 || l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 ||
		l.Percentile(0.5) != 0 || l.StdDev() != 0 {
		t.Error("empty collector must return zeros")
	}
}

func TestLatencyStats(t *testing.T) {
	var l Latency
	for _, d := range []time.Duration{30, 10, 20, 40, 50} {
		l.Add(d * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Errorf("Count=%d", l.Count())
	}
	if l.Mean() != 30*time.Millisecond {
		t.Errorf("Mean=%v", l.Mean())
	}
	if l.Min() != 10*time.Millisecond || l.Max() != 50*time.Millisecond {
		t.Errorf("Min/Max=%v/%v", l.Min(), l.Max())
	}
	if got := l.Percentile(0.5); got != 30*time.Millisecond {
		t.Errorf("P50=%v", got)
	}
	if got := l.Percentile(1.0); got != 50*time.Millisecond {
		t.Errorf("P100=%v", got)
	}
	if got := l.Percentile(-1); got != 10*time.Millisecond {
		t.Errorf("P<0=%v", got)
	}
	if got := l.Percentile(2); got != 50*time.Millisecond {
		t.Errorf("P>1=%v", got)
	}
	if l.StdDev() <= 0 {
		t.Error("StdDev must be positive")
	}
	// Adding after sorting keeps stats correct.
	l.Add(time.Millisecond)
	if l.Min() != time.Millisecond {
		t.Errorf("Min after re-add=%v", l.Min())
	}
}

func TestFalsePositives(t *testing.T) {
	var f FalsePositives
	if f.Rate() != 0 {
		t.Error("empty rate must be 0")
	}
	f.Record(true)
	f.Record(true)
	f.Record(true)
	f.Record(false)
	if f.TruePositives() != 3 || f.FalsePositiveCount() != 1 || f.Total() != 4 {
		t.Errorf("counts wrong: %+v", f)
	}
	if got := f.Rate(); got != 25 {
		t.Errorf("Rate=%v, want 25", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "Fig X",
		Columns: []string{"n", "delay"},
	}
	tab.AddRow(10, 5*time.Millisecond)
	tab.AddRow("many", 1.5)
	out := tab.String()
	if !strings.Contains(out, "## Fig X") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "delay") || !strings.Contains(out, "5ms") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "1.500") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines=%d:\n%s", len(lines), out)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Error("no bounds must fail")
	}
	if _, err := NewHistogram(2*time.Millisecond, time.Millisecond); err == nil {
		t.Error("non-ascending bounds must fail")
	}
	h, err := NewHistogram(time.Millisecond, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(500 * time.Microsecond) // bucket 0
	h.Add(5 * time.Millisecond)   // bucket 1
	h.Add(5 * time.Millisecond)   // bucket 1
	h.Add(time.Second)            // overflow
	if h.Total() != 4 {
		t.Errorf("Total=%d", h.Total())
	}
	bk := h.Buckets()
	if bk[0].Count != 1 || bk[1].Count != 2 || bk[2].Count != 1 {
		t.Errorf("buckets=%+v", bk)
	}
	out := h.String()
	if !strings.Contains(out, "+inf") || !strings.Contains(out, "#") {
		t.Errorf("String()=%q", out)
	}
}
