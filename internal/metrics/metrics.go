// Package metrics provides the measurement primitives shared by the
// experiment harness: latency sample collectors with summary statistics,
// false-positive accounting, and a small table abstraction that renders
// experiment results as the rows/series of the paper's figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Latency collects duration samples.
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Min returns the smallest sample (0 with no samples).
func (l *Latency) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.ensureSorted()
	return l.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (l *Latency) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.ensureSorted()
	return l.samples[len(l.samples)-1]
}

// Percentile returns the p-quantile (p in [0,1]) using nearest-rank.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	l.ensureSorted()
	idx := int(math.Ceil(p*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return l.samples[idx]
}

// StdDev returns the population standard deviation.
func (l *Latency) StdDev() time.Duration {
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	mean := float64(l.Mean())
	var acc float64
	for _, s := range l.samples {
		d := float64(s) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

func (l *Latency) ensureSorted() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// FalsePositives accounts deliveries against ground truth: a delivery is a
// true positive when the receiving subscriber's filter matches the event,
// a false positive otherwise (Section 6.4's FPR definition).
type FalsePositives struct {
	truePos  uint64
	falsePos uint64
}

// Record adds one delivery outcome.
func (f *FalsePositives) Record(matched bool) {
	if matched {
		f.truePos++
	} else {
		f.falsePos++
	}
}

// TruePositives returns the number of wanted deliveries.
func (f *FalsePositives) TruePositives() uint64 { return f.truePos }

// FalsePositiveCount returns the number of unwanted deliveries.
func (f *FalsePositives) FalsePositiveCount() uint64 { return f.falsePos }

// Total returns all recorded deliveries.
func (f *FalsePositives) Total() uint64 { return f.truePos + f.falsePos }

// Rate returns the false positive rate as a percentage of all received
// events (the paper's FPR metric).
func (f *FalsePositives) Rate() float64 {
	total := f.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(f.falsePos) / float64(total)
}

// Table is a printable experiment result: one column header set and a list
// of rows, mirroring the series of one paper figure.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Histogram is a fixed-bucket latency histogram for distribution
// reporting: bucket i counts samples in [Bounds[i-1], Bounds[i]), with an
// implicit overflow bucket above the last bound.
type Histogram struct {
	bounds []time.Duration
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram over ascending bucket bounds.
func NewHistogram(bounds ...time.Duration) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	for i, b := range h.bounds {
		if d < b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Buckets returns (upper bound, count) pairs; the final entry has a zero
// bound and holds the overflow count.
func (h *Histogram) Buckets() []struct {
	Bound time.Duration
	Count uint64
} {
	out := make([]struct {
		Bound time.Duration
		Count uint64
	}, len(h.counts))
	for i := range h.bounds {
		out[i].Bound = h.bounds[i]
		out[i].Count = h.counts[i]
	}
	out[len(out)-1].Count = h.counts[len(h.counts)-1]
	return out
}

// String renders the histogram as one line per bucket with a bar.
func (h *Histogram) String() string {
	var b strings.Builder
	max := uint64(1)
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i, bk := range h.Buckets() {
		label := "+inf"
		if i < len(h.bounds) {
			label = bk.Bound.String()
		}
		bar := strings.Repeat("#", int(bk.Count*40/max))
		fmt.Fprintf(&b, "<%-10s %8d %s\n", label, bk.Count, bar)
	}
	return b.String()
}

// Counters is an ordered named-counter set: counters print in first-Add
// order, so reports stay stable across runs. The fault-tolerance soak and
// experiment use it to aggregate retry/quarantine/repair tallies. It is
// safe for concurrent use.
type Counters struct {
	mu    sync.Mutex
	order []string
	vals  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]uint64)}
}

// Add increments a named counter, registering it on first use.
func (c *Counters) Add(name string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[name]; !ok {
		c.order = append(c.order, name)
	}
	c.vals[name] += delta
}

// Get returns the current value of a counter (0 if never added).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns the counter names in first-Add order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Table renders the counters as a two-column table.
func (c *Counters) Table(title string) *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Table{Title: title, Columns: []string{"counter", "value"}}
	for _, name := range c.order {
		t.AddRow(name, c.vals[name])
	}
	return t
}
