// Command pleroma-top is a live terminal dashboard over a PLEROMA
// observability endpoint (pleroma-d -obs-addr, or any obs.Serve). It
// polls /metrics on an interval and renders publish/delivery rates,
// end-to-end latency percentiles, hop counts, flow-table occupancy, and
// transport health — the operator's at-a-glance view of a running
// deployment.
//
// Usage:
//
//	pleroma-top -addr 127.0.0.1:9090
//	pleroma-top -addr 127.0.0.1:9090 -interval 1s
//	pleroma-top -addr 127.0.0.1:9090 -once
//
// Rates are computed from counter deltas between consecutive polls;
// percentiles are interpolated from the cumulative histogram buckets the
// endpoint exposes. Only the standard library is used: the dashboard
// speaks the Prometheus text exposition format directly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-top:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("pleroma-top", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9090", "observability endpoint (host:port or full URL)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		once     = fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := *addr
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"

	prev, err := scrape(url)
	if err != nil {
		return err
	}
	if *once {
		render(w, url, prev, nil, false)
		return nil
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	render(w, url, prev, nil, true)
	for {
		select {
		case <-stop:
			return nil
		case <-t.C:
			cur, err := scrape(url)
			if err != nil {
				fmt.Fprintf(w, "scrape failed: %v\n", err)
				continue
			}
			render(w, url, cur, prev, true)
			prev = cur
		}
	}
}

// point is one parsed exposition sample.
type point struct {
	labels map[string]string
	value  float64
}

// metrics maps a metric name (with the _bucket/_sum/_count suffixes kept)
// to its samples, plus the scrape time for rate computation.
type metrics struct {
	at      time.Time
	samples map[string][]point
}

func scrape(url string) (*metrics, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

// parseMetrics reads the Prometheus text exposition format: HELP/TYPE
// comments are skipped, every sample line is kept.
func parseMetrics(r io.Reader) (*metrics, error) {
	m := &metrics{at: time.Now(), samples: make(map[string][]point)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		m.samples[name] = append(m.samples[name], point{labels: labels, value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseSample splits one exposition line into name, label map, and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		labels, err := parseLabels(line[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[j+1:])
		v, err := parseValue(rest)
		return name, labels, v, err
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name, rest = fields[0], fields[1]
	v, err := parseValue(rest)
	return name, nil, v, err
}

// parseLabels parses `k="v",k="v"` honoring \" escapes inside values.
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		i := eq + 2
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(s[i])
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out[key] = b.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return inf(), nil
	case "-Inf":
		return -inf(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func inf() float64 { v := 0.0; return 1 / v }

// total sums every sample of a metric (all labels).
func (m *metrics) total(name string) float64 {
	var t float64
	for _, p := range m.samples[name] {
		t += p.value
	}
	return t
}

// rate computes the per-second delta of a summed counter between two
// scrapes; NaN-free: returns 0 when prev is nil or time went backwards.
func rate(cur, prev *metrics, name string) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	d := cur.total(name) - prev.total(name)
	if d < 0 {
		d = 0 // counter reset (daemon restart)
	}
	return d / dt
}

// totalBy sums a metric's samples grouped by one label's values.
func (m *metrics) totalBy(name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range m.samples[name] {
		out[p.labels[label]] += p.value
	}
	return out
}

// rateBy computes per-second deltas of a labelled counter, one rate per
// label value seen in the current scrape.
func rateBy(cur, prev *metrics, name, label string) map[string]float64 {
	out := make(map[string]float64)
	if prev == nil {
		return out
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return out
	}
	was := prev.totalBy(name, label)
	for k, v := range cur.totalBy(name, label) {
		d := v - was[k]
		if d < 0 {
			d = 0
		}
		out[k] = d / dt
	}
	return out
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le    float64
	count float64
}

// buckets merges a histogram's _bucket samples across all label sets
// (summing counts per le bound) and returns them sorted by bound.
func (m *metrics) buckets(name string) []bucket {
	byLE := make(map[float64]float64)
	for _, p := range m.samples[name+"_bucket"] {
		le, err := parseValue(p.labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += p.value
	}
	out := make([]bucket, 0, len(byLE))
	for le, c := range byLE {
		out = append(out, bucket{le: le, count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// quantile interpolates q within a histogram's cumulative buckets,
// mirroring obs.HistSnapshot.Quantile: linear within the winning bucket,
// clamped to the last finite bound for overflow samples.
func quantile(bs []bucket, q float64) float64 {
	if len(bs) == 0 {
		return 0
	}
	totalC := bs[len(bs)-1].count
	if totalC == 0 {
		return 0
	}
	target := q * totalC
	var prevCount, prevLE float64
	lastFinite := 0.0
	for _, b := range bs {
		if b.le < inf() {
			lastFinite = b.le
		}
	}
	for _, b := range bs {
		if b.count >= target {
			if b.le >= inf() {
				return lastFinite
			}
			in := b.count - prevCount
			if in <= 0 {
				return b.le
			}
			return prevLE + (b.le-prevLE)*(target-prevCount)/in
		}
		prevCount, prevLE = b.count, b.le
	}
	return lastFinite
}

// histMean returns sum/count of a histogram ("" when absent).
func (m *metrics) histMean(name string) (float64, bool) {
	count := m.total(name + "_count")
	if count == 0 {
		return 0, false
	}
	return m.total(name+"_sum") / count, true
}

const clearScreen = "\x1b[H\x1b[2J"

// render draws one dashboard frame. prev enables rates; ansi clears the
// screen first (the live loop).
func render(w io.Writer, url string, cur, prev *metrics, ansi bool) {
	if ansi {
		fmt.Fprint(w, clearScreen)
	}
	fmt.Fprintf(w, "pleroma-top  %s  %s\n\n", url, cur.at.Format(time.TimeOnly))

	deliv := cur.total("pleroma_deliveries_total")
	fp := cur.total("pleroma_false_positives_total")
	fpPct := 0.0
	if deliv > 0 {
		fpPct = 100 * fp / deliv
	}
	fmt.Fprintf(w, "  deliveries   %s total   %s/s   false positives %.1f%%\n",
		fmtCount(deliv), fmtRate(rate(cur, prev, "pleroma_deliveries_total"), prev), fpPct)

	lat := cur.buckets("pleroma_delivery_latency_seconds")
	fmt.Fprintf(w, "  latency sim  p50 %s   p95 %s   p99 %s\n",
		fmtSec(quantile(lat, 0.50)), fmtSec(quantile(lat, 0.95)), fmtSec(quantile(lat, 0.99)))
	if wall := cur.buckets("pleroma_delivery_wall_latency_seconds"); len(wall) > 0 && wall[len(wall)-1].count > 0 {
		fmt.Fprintf(w, "  latency wall p50 %s   p95 %s   p99 %s\n",
			fmtSec(quantile(wall, 0.50)), fmtSec(quantile(wall, 0.95)), fmtSec(quantile(wall, 0.99)))
	}
	if mean, ok := cur.histMean("pleroma_delivery_hops"); ok {
		fmt.Fprintf(w, "  hops         mean %.1f\n", mean)
	}

	occ := cur.samples["pleroma_flow_table_occupancy"]
	if len(occ) > 0 {
		var sum, max float64
		for _, p := range occ {
			sum += p.value
			if p.value > max {
				max = p.value
			}
		}
		fmt.Fprintf(w, "  flow tables  %s entries over %d switches (max %s)\n",
			fmtCount(sum), len(occ), fmtCount(max))
	}

	fmt.Fprintf(w, "  transport    conns %s   inflight %s   reconnects %s   frames %s/s\n",
		fmtCount(cur.total("pleroma_transport_connections")),
		fmtCount(cur.total("pleroma_transport_inflight_requests")),
		fmtCount(cur.total("pleroma_transport_reconnects_total")),
		fmtRate(rate(cur, prev, "pleroma_transport_frames_sent_total"), prev))

	// Pipelined data path: publish window occupancy, coalescing batch
	// sizes, and writer flush activity by reason.
	var pipe []string
	if win := cur.samples["pleroma_transport_publish_window"]; len(win) > 0 {
		pipe = append(pipe, fmt.Sprintf("window %s", fmtCount(cur.total("pleroma_transport_publish_window"))))
	}
	if mean, ok := cur.histMean("pleroma_transport_publish_coalesced_events"); ok {
		pipe = append(pipe, fmt.Sprintf("pub batch %.1f ev", mean))
	}
	if mean, ok := cur.histMean("pleroma_transport_deliver_batch_events"); ok {
		pipe = append(pipe, fmt.Sprintf("deliver batch %.1f ev", mean))
	}
	if mean, ok := cur.histMean("pleroma_transport_write_batch_frames"); ok {
		pipe = append(pipe, fmt.Sprintf("write batch %.1f fr", mean))
	}
	if len(pipe) > 0 {
		fmt.Fprintf(w, "  pipeline     %s\n", strings.Join(pipe, "   "))
	}
	if flushes := rateBy(cur, prev, "pleroma_transport_flushes_total", "reason"); len(flushes) > 0 {
		reasons := make([]string, 0, len(flushes))
		for r := range flushes {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, r := range reasons {
			parts[i] = fmt.Sprintf("%s %.1f/s", r, flushes[r])
		}
		fmt.Fprintf(w, "  flushes      %s\n", strings.Join(parts, "   "))
	}
}

// fmtRate renders a per-second rate, or "-" before a second scrape
// establishes a delta.
func fmtRate(v float64, prev *metrics) string {
	if prev == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtCount(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// fmtSec renders seconds with an adaptive unit.
func fmtSec(v float64) string {
	switch {
	case v <= 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}
