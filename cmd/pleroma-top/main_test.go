package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"pleroma/internal/obs"
)

const canned = `# HELP pleroma_deliveries_total Events handed to subscription handlers.
# TYPE pleroma_deliveries_total counter
pleroma_deliveries_total 120
# HELP pleroma_false_positives_total fp
# TYPE pleroma_false_positives_total counter
pleroma_false_positives_total 6
# HELP pleroma_flow_table_occupancy occ
# TYPE pleroma_flow_table_occupancy gauge
pleroma_flow_table_occupancy{switch="1"} 10
pleroma_flow_table_occupancy{switch="2"} 30
# HELP pleroma_delivery_latency_seconds lat
# TYPE pleroma_delivery_latency_seconds histogram
pleroma_delivery_latency_seconds_bucket{le="0.001"} 50
pleroma_delivery_latency_seconds_bucket{le="0.01"} 100
pleroma_delivery_latency_seconds_bucket{le="+Inf"} 100
pleroma_delivery_latency_seconds_sum 0.25
pleroma_delivery_latency_seconds_count 100
# HELP pleroma_weird label escaping
# TYPE pleroma_weird gauge
pleroma_weird{name="a\"b\\c\nd"} 1
`

func TestParseMetrics(t *testing.T) {
	m, err := parseMetrics(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.total("pleroma_deliveries_total"); got != 120 {
		t.Fatalf("deliveries = %v, want 120", got)
	}
	if got := m.total("pleroma_flow_table_occupancy"); got != 40 {
		t.Fatalf("occupancy sum = %v, want 40", got)
	}
	pts := m.samples["pleroma_weird"]
	if len(pts) != 1 || pts[0].labels["name"] != "a\"b\\c\nd" {
		t.Fatalf("escaped label parsed as %+v", pts)
	}
}

func TestQuantile(t *testing.T) {
	m, err := parseMetrics(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	bs := m.buckets("pleroma_delivery_latency_seconds")
	if len(bs) != 3 || !math.IsInf(bs[2].le, 1) {
		t.Fatalf("buckets = %+v", bs)
	}
	// 50 samples below 1ms, 50 between 1ms and 10ms: p50 = 1ms exactly,
	// p75 halfway into the second bucket.
	if got := quantile(bs, 0.50); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.001", got)
	}
	if got := quantile(bs, 0.75); math.Abs(got-0.0055) > 1e-9 {
		t.Fatalf("p75 = %v, want 0.0055", got)
	}
	// Every sample in overflow clamps to the last finite bound.
	overflow := []bucket{{le: 0.001, count: 0}, {le: inf(), count: 9}}
	if got := quantile(overflow, 0.99); got != 0.001 {
		t.Fatalf("overflow p99 = %v, want 0.001", got)
	}
}

func TestRate(t *testing.T) {
	prev := &metrics{at: time.Unix(100, 0), samples: map[string][]point{
		"x_total": {{value: 10}},
	}}
	cur := &metrics{at: time.Unix(110, 0), samples: map[string][]point{
		"x_total": {{value: 60}},
	}}
	if got := rate(cur, prev, "x_total"); got != 5 {
		t.Fatalf("rate = %v, want 5", got)
	}
	if got := rate(cur, nil, "x_total"); got != 0 {
		t.Fatalf("rate without prev = %v, want 0", got)
	}
	// Counter reset (daemon restart) clamps to zero, not negative.
	if got := rate(prev, cur, "x_total"); got != 0 {
		prev.at, cur.at = cur.at, prev.at
		t.Fatalf("reset rate = %v, want 0", got)
	}
}

// obsEndpoint serves a live obs registry the way pleroma-d -obs-addr does.
func obsEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter(obs.MDeliveries, "deliveries").Add(42)
	reg.Counter(obs.MFalsePositives, "fp").Add(2)
	reg.Gauge(obs.MTransportConns, "conns").Set(3)
	lat := obs.NewDeliveryLatency(4)
	lat.Attach(reg)
	lat.Record(obs.DeliverySample{Tree: 1, Partition: 0, Latency: 2 * time.Millisecond, Hops: 3})
	h := reg.Histogram(obs.MDeliveryLatency, "lat", obs.DefaultLatencyBuckets...)
	h.Observe(2 * time.Millisecond)
	srv := httptest.NewServer(obs.Handler(reg, nil, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunOnce(t *testing.T) {
	srv := obsEndpoint(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-once"}, &buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pleroma-top", "deliveries   42 total", "false positives 4.8%", "latency sim", "hops         mean 3.0", "conns 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, clearScreen) {
		t.Fatalf("-once frame must not clear the screen:\n%q", out)
	}
}

func TestRunLoopStops(t *testing.T) {
	srv := obsEndpoint(t)
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt
	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-interval", "1h"}, &buf, stop); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), clearScreen) {
		t.Fatal("live loop should redraw with ANSI clear")
	}
}

func TestRunBadAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:1", "-once"}, &buf, nil); err == nil {
		t.Fatal("unreachable endpoint should error")
	}
}
