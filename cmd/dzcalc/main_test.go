package main

import "testing"

func TestRunRange(t *testing.T) {
	if err := run([]string{"-dims", "2", "-range", "0=512:767", "-maxlen", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEvent(t *testing.T) {
	if err := run([]string{"-dims", "2", "-event", "700,300", "-len", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExpr(t *testing.T) {
	if err := run([]string{"-expr", "101101"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // nothing to do
		{"-expr", "10x"},                      // invalid expression
		{"-dims", "2", "-range", "junk"},      // bad range syntax
		{"-dims", "2", "-range", "0=5"},       // missing hi
		{"-dims", "2", "-range", "9=0:1"},     // bad attribute index
		{"-dims", "2", "-range", "0=a:1"},     // bad lower bound
		{"-dims", "2", "-range", "0=0:b"},     // bad upper bound
		{"-dims", "2", "-range", "0=900:100"}, // empty interval
		{"-dims", "2", "-event", "1"},         // wrong arity
		{"-dims", "2", "-event", "1,x"},       // bad value
		{"-dims", "2", "-event", "1,9999"},    // out of domain
		{"-dims", "0", "-event", "1"},         // invalid schema
		{"-dims", "2", "-bits", "0", "-event", "1,1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) expected error", args)
		}
	}
}
