// Command dzcalc inspects PLEROMA's spatial index: it converts
// content-based filters into DZ sets and the IPv6 multicast flow prefixes
// a switch would match on, and encodes event points into dz-expressions.
//
// Usage:
//
//	dzcalc -dims 2 -range "0=512:767" -maxlen 3
//	dzcalc -dims 2 -event "700,300" -len 8
//	dzcalc -expr 101101
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
	"pleroma/internal/space"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dzcalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dzcalc", flag.ContinueOnError)
	var (
		dims     = fs.Int("dims", 2, "number of attributes")
		bits     = fs.Int("bits", 10, "bits per attribute domain")
		rangeStr = fs.String("range", "", "filter ranges, e.g. \"0=512:767,1=0:100\"")
		eventStr = fs.String("event", "", "event point, e.g. \"700,300\"")
		exprStr  = fs.String("expr", "", "dz-expression to convert to an IPv6 prefix")
		maxLen   = fs.Int("maxlen", 8, "maximum dz length for decomposition")
		length   = fs.Int("len", 16, "dz length for event encoding")
		maxSubs  = fs.Int("maxcount", 64, "maximum subspaces per decomposition")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *exprStr != "" {
		return showExpr(*exprStr)
	}
	attrs := make([]space.Attribute, *dims)
	for i := range attrs {
		attrs[i] = space.Attribute{Name: "attr" + strconv.Itoa(i), Bits: *bits}
	}
	sch, err := space.NewSchema(attrs...)
	if err != nil {
		return err
	}
	switch {
	case *rangeStr != "":
		return showFilter(sch, *rangeStr, *maxLen, *maxSubs)
	case *eventStr != "":
		return showEvent(sch, *eventStr, *length)
	default:
		fs.Usage()
		return fmt.Errorf("need one of -range, -event, or -expr")
	}
}

func showExpr(s string) error {
	e, err := dz.Parse(s)
	if err != nil {
		return err
	}
	prefix, err := ipmc.FromExpr(e)
	if err != nil {
		return err
	}
	addr, err := ipmc.EventAddr(e)
	if err != nil {
		return err
	}
	fmt.Printf("dz           %s (len %d)\n", e, e.Len())
	fmt.Printf("flow match   %s\n", prefix)
	fmt.Printf("event dest   %s\n", addr)
	return nil
}

func showFilter(sch *space.Schema, rangeStr string, maxLen, maxSubs int) error {
	f := space.NewFilter()
	for _, part := range strings.Split(rangeStr, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad range %q (want idx=lo:hi)", part)
		}
		idx, err := strconv.Atoi(kv[0])
		if err != nil || idx < 0 || idx >= sch.Dims() {
			return fmt.Errorf("bad attribute index %q", kv[0])
		}
		bounds := strings.SplitN(kv[1], ":", 2)
		if len(bounds) != 2 {
			return fmt.Errorf("bad bounds %q (want lo:hi)", kv[1])
		}
		lo, err := strconv.ParseUint(bounds[0], 10, 32)
		if err != nil {
			return fmt.Errorf("bad lower bound %q", bounds[0])
		}
		hi, err := strconv.ParseUint(bounds[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad upper bound %q", bounds[1])
		}
		f = f.Range(sch.Attribute(idx).Name, uint32(lo), uint32(hi))
	}
	set, err := sch.DecomposeLimited(f, maxLen, maxSubs)
	if err != nil {
		return err
	}
	fmt.Printf("filter       %s\n", f)
	fmt.Printf("DZ set       %s (%d subspaces, max len %d)\n", set, len(set), set.MaxLen())
	fmt.Printf("coverage     %.4f%% of the event space\n", set.Fraction()*100)
	fmt.Println("flow matches:")
	for _, e := range set {
		prefix, err := ipmc.FromExpr(e)
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s %s\n", e, prefix)
	}
	return nil
}

func showEvent(sch *space.Schema, eventStr string, length int) error {
	parts := strings.Split(eventStr, ",")
	if len(parts) != sch.Dims() {
		return fmt.Errorf("event has %d values, schema has %d attributes", len(parts), sch.Dims())
	}
	vals := make([]uint32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return fmt.Errorf("bad value %q", p)
		}
		vals[i] = uint32(v)
	}
	ev, err := sch.NewEvent(vals...)
	if err != nil {
		return err
	}
	expr, err := sch.Encode(ev, length)
	if err != nil {
		return err
	}
	addr, err := ipmc.EventAddr(expr)
	if err != nil {
		return err
	}
	fmt.Printf("event        %v\n", ev.Values)
	fmt.Printf("dz           %s (len %d)\n", expr, expr.Len())
	fmt.Printf("dest addr    %s\n", addr)
	return nil
}
