// Command pleroma-sim runs the experiments that regenerate the paper's
// evaluation figures (Figure 7 panels a–h), the ablation studies, and the
// extension studies (in-band activation latency, southbound fault
// tolerance, controller failover).
//
// Usage:
//
//	pleroma-sim -list
//	pleroma-sim -exp fig7a
//	pleroma-sim -exp all -full
//
// Quick mode (default) uses reduced workload sizes; -full reproduces the
// paper's original parameter scales and can take minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pleroma/internal/experiments"
	"pleroma/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pleroma-sim", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run (or 'all')")
		full    = fs.Bool("full", false, "use the paper's full parameter scales")
		seed    = fs.Int64("seed", 42, "random seed")
		list    = fs.Bool("list", false, "list available experiments")
		jsonOut = fs.Bool("json", false, "emit results as JSON")
		obsAddr = fs.String("obs-addr", "", "serve the observability endpoint of an instrumented demo deployment on this address (e.g. :9090) instead of running -exp")
		obsFor  = fs.Duration("obs-duration", 30*time.Second, "how long the -obs-addr demo keeps serving before exiting")
		shards  = fs.Int("shards", 1, "parallel simulation shards for the -obs-addr demo (clamped to the switch count; >1 exposes the pleroma_shard_* metric families)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *obsAddr != "" {
		return runObsDemo(*obsAddr, *obsFor, *seed, *shards, os.Stdout)
	}
	if *list {
		for _, id := range experiments.IDs() {
			desc, _ := experiments.Describe(id)
			fmt.Printf("%-12s %s\n", id, desc)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}

	cfg := experiments.Config{Seed: *seed, Quick: !*full}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	if *jsonOut {
		return runJSON(ids, cfg, os.Stdout)
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		desc, _ := experiments.Describe(id)
		fmt.Printf("=== %s — %s\n", id, desc)
		start := time.Now()
		if err := experiments.RunAndPrint(id, cfg, os.Stdout); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Printf("(%s in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// jsonResult is the machine-readable output of one experiment.
type jsonResult struct {
	Experiment  string           `json:"experiment"`
	Description string           `json:"description"`
	Tables      []*metrics.Table `json:"tables"`
}

// runJSON executes the experiments and emits one JSON document.
func runJSON(ids []string, cfg experiments.Config, w io.Writer) error {
	out := make([]jsonResult, 0, len(ids))
	for _, id := range ids {
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		desc, _ := experiments.Describe(id)
		out = append(out, jsonResult{Experiment: id, Description: desc, Tables: tables})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
