package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pleroma"
)

// runObsDemo boots a small instrumented deployment, drives a workload
// rich enough to populate every metric family (pub/sub churn, injected
// southbound faults, a quarantine/heal/resync cycle), and serves the
// operational endpoint on addr for dur. Scripts (make obs-demo) parse the
// printed address, so keep the first output line stable.
func runObsDemo(addr string, dur time.Duration, seed int64, shards int, w io.Writer) error {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "price", Bits: 10},
		pleroma.Attribute{Name: "volume", Bits: 10},
	)
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch,
		pleroma.WithObservability(0),
		pleroma.WithShards(shards),
		pleroma.WithSouthboundFaults(pleroma.FaultConfig{Seed: seed, Rate: 0.02, DownCalls: 3}),
		pleroma.WithRetryPolicy(pleroma.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}),
	)
	if err != nil {
		return err
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(seed))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("demo-pub", hosts[0])
	if err != nil {
		return err
	}
	if err := pub.Advertise(pleroma.NewFilter()); err != nil {
		return err
	}
	for i := 1; i < len(hosts); i++ {
		f := pleroma.NewFilter().Range("price", uint32(rng.Intn(512)), 1023)
		if err := sys.Subscribe(fmt.Sprintf("demo-sub-%d", i), hosts[i], f, nil); err != nil {
			return err
		}
	}
	for i := 0; i < 200; i++ {
		if err := pub.Publish(uint32(rng.Intn(1024)), uint32(rng.Intn(1024))); err != nil {
			return err
		}
	}
	sys.Run()
	// Heal whatever the random faults broke so /healthz serves 200 unless
	// the demo got unlucky; leftover quarantines stay visible there.
	sys.HealFaults()
	sys.SetFaultRate(0)
	sys.ResyncUntilHealthy(5)

	srv, err := sys.ServeObservability(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "observability endpoint: http://%s\n", srv.Addr())
	fmt.Fprintf(w, "paths: /metrics /healthz /readyz /traces /debug/pprof/\n")
	st := sys.Stats()
	fmt.Fprintf(w, "workload: %d deliveries, %.1f%% false positives, %d flowmods, %d shards\n",
		st.Deliveries, st.FPRPercent(), st.FlowMods, sys.Shards())
	fmt.Fprintf(w, "serving for %v\n", dur)
	time.Sleep(dur)
	return nil
}
