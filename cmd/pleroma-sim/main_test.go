package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "abl-trees"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHAExperiment(t *testing.T) {
	if err := run([]string{"-exp", "ext-ha"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -exp must fail")
	}
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunObsDemo(t *testing.T) {
	if err := run([]string{"-obs-addr", "127.0.0.1:0", "-obs-duration", "10ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunObsDemoSharded(t *testing.T) {
	if err := run([]string{"-obs-addr", "127.0.0.1:0", "-obs-duration", "10ms", "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-exp", "abl-trees", "-json"}); err != nil {
		t.Fatal(err)
	}
}
