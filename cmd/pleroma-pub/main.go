// Command pleroma-pub is a publisher process for a running pleroma-d
// daemon: it advertises a region of the event space, publishes a burst
// of (optionally random) events, asks the daemon to run the simulated
// network, and exits.
//
// Usage:
//
//	pleroma-pub -addr 127.0.0.1:7466 -id pub1 -filter "" -count 100
//	pleroma-pub -addr 127.0.0.1:7466 -id pub1 -events "3,4;100,200"
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"pleroma"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-pub:", err)
		os.Exit(1)
	}
}

// parseEvents parses "v,v;v,v" into explicit event tuples.
func parseEvents(s string) ([][]uint32, error) {
	var tuples [][]uint32
	for _, ev := range strings.Split(s, ";") {
		var vals []uint32
		for _, v := range strings.Split(ev, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("event %q: %w", ev, err)
			}
			vals = append(vals, uint32(n))
		}
		tuples = append(tuples, vals)
	}
	return tuples, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pleroma-pub", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:7466", "daemon address")
		id     = fs.String("id", "pub", "publisher id (reconnects must reuse it)")
		host   = fs.Int("host", 0, "index into the daemon's host list to publish from")
		filter = fs.String("filter", "", "advertised region as attr:lo-hi,... (empty = whole space)")
		events = fs.String("events", "", "explicit events to publish, v,v;v,v (overrides -count)")
		count  = fs.Int("count", 10, "number of random events to publish")
		max    = fs.Int("max", 1024, "exclusive upper bound for random attribute values")
		dims   = fs.Int("dims", 2, "attributes per random event (match the daemon's schema)")
		seed   = fs.Int64("seed", 1, "random seed for -count mode")
		doRun  = fs.Bool("run", true, "drive the simulated network after publishing")

		pipeline    = fs.Bool("pipeline", true, "publish through the pipelined async path (coalesced frames, windowed acks)")
		window      = fs.Int("window", 0, "async publish window: unacked requests in flight (0 = transport default)")
		batchEvents = fs.Int("batch-events", 0, "events coalesced per publish request (0 = transport default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := pleroma.ParseFilter(*filter)
	if err != nil {
		return err
	}
	dopts := []pleroma.DialOption{pleroma.WithDialID("pleroma-pub/" + *id)}
	if *window > 0 || *batchEvents > 0 {
		dopts = append(dopts, pleroma.WithDialTransport(pleroma.TransportOptions{
			Window:      *window,
			BatchEvents: *batchEvents,
		}))
	}
	c, err := pleroma.Dial(*addr, dopts...)
	if err != nil {
		return err
	}
	defer c.Close()

	hosts := c.Hosts()
	if *host < 0 || *host >= len(hosts) {
		return fmt.Errorf("-host %d out of range (daemon has %d hosts)", *host, len(hosts))
	}
	if err := c.Advertise(*id, hosts[*host], f); err != nil {
		return err
	}

	var tuples [][]uint32
	if *events != "" {
		if tuples, err = parseEvents(*events); err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *count; i++ {
			vals := make([]uint32, *dims)
			for d := range vals {
				vals[d] = uint32(rng.Intn(*max))
			}
			tuples = append(tuples, vals)
		}
	}
	if *pipeline {
		// Pipelined path: every tuple enters the coalescing buffer and the
		// Flush waits for the whole window to ack — same exactly-once
		// guarantee as the synchronous call, a fraction of the round trips.
		for _, vals := range tuples {
			if err := c.PublishAsync(*id, vals...); err != nil {
				return err
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
	} else if err := c.PublishBatch(*id, tuples...); err != nil {
		return err
	}
	fmt.Fprintf(w, "published %d events as %q from host %d\n", len(tuples), *id, hosts[*host])

	if *doRun {
		now, err := c.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "network ran to t=%v\n", now.Round(time.Microsecond))
	}
	return nil
}
