package main

import (
	"bytes"
	"strings"
	"testing"

	"pleroma"
)

func TestParseEvents(t *testing.T) {
	tuples, err := parseEvents("1,2;3,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0][0] != 1 || tuples[1][1] != 4 {
		t.Fatalf("parsed %v", tuples)
	}
	if _, err := parseEvents("1,x"); err == nil {
		t.Error("parseEvents accepted a non-numeric value")
	}
}

func TestPublishAgainstDaemon(t *testing.T) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "price", Bits: 10},
		pleroma.Attribute{Name: "volume", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch, pleroma.WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var out bytes.Buffer
	err = run([]string{
		"-addr", sys.ListenAddr(),
		"-id", "p1",
		"-events", "100,200;300,400",
	}, &out)
	if err != nil {
		t.Fatalf("pleroma-pub: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "published 2 events") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "network ran to") {
		t.Fatalf("publish did not drive the network:\n%s", out.String())
	}
}
