package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pleroma"
)

func TestParseSchema(t *testing.T) {
	attrs, err := parseSchema("price:10,volume:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0].Name != "price" || attrs[0].Bits != 10 || attrs[1].Bits != 4 {
		t.Fatalf("parsed %+v", attrs)
	}
	for _, bad := range []string{"price", "price:x", ""} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) accepted", bad)
		}
	}
}

// syncBuffer lets the test poll output written by the daemon goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, buf *syncBuffer, substr string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if out := buf.String(); strings.Contains(out, substr) {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon output never contained %q; got:\n%s", substr, buf.String())
	return ""
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon boots run() on an ephemeral port and returns the bound
// address plus a shutdown func that signals SIGTERM and waits for exit.
func startDaemon(t *testing.T, buf *syncBuffer, extra ...string) (string, func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	args := append([]string{"-listen", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, buf, stop) }()
	out := waitFor(t, buf, "listening on ")
	m := listenRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no address in daemon output:\n%s", out)
	}
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			stop <- syscall.SIGTERM
			if err := <-done; err != nil {
				t.Errorf("daemon exited with error: %v", err)
			}
		})
	}
	t.Cleanup(shutdown)
	return m[1], shutdown
}

var obsRE = regexp.MustCompile(`observability on http://(\S+)`)

// TestDaemonObsEndpoints boots a daemon with -obs-addr and checks the full
// operational surface: /metrics, /readyz, /traces (with trace filtering),
// and /debug/pprof — plus that a traced client publish shows up in both
// the latency metrics and the trace ring.
func TestDaemonObsEndpoints(t *testing.T) {
	var buf syncBuffer
	addr, _ := startDaemon(t, &buf, "-obs-addr", "127.0.0.1:0")
	out := waitFor(t, &buf, "observability on ")
	m := obsRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no obs address in daemon output:\n%s", out)
	}
	base := "http://" + m[1]

	c, err := pleroma.Dial(addr, pleroma.WithDialObservability(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	if err := c.Advertise("p", hosts[0], pleroma.NewFilter()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var traceID uint64
	if err := c.Subscribe("s", hosts[1], pleroma.NewFilter(), func(d pleroma.Delivery) {
		mu.Lock()
		traceID = d.TraceID
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	tid := traceID
	mu.Unlock()
	if tid == 0 {
		t.Fatal("delivery carried no trace id despite negotiated tracing")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"pleroma_deliveries_total 1",
		"pleroma_delivery_latency_tree_seconds",
		"pleroma_delivery_hops",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d", code)
	}
	code, body = get(fmt.Sprintf("/traces?trace=%d", tid))
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	if !strings.Contains(body, "op=publish") || !strings.Contains(body, "op=deliver") {
		t.Fatalf("daemon trace %d missing publish/deliver spans:\n%s", tid, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	// The dialing client holds the other half of the same trace.
	spans := c.TraceByID(tid)
	if len(spans) < 2 {
		t.Fatalf("client has %d spans for trace %d, want publish+recv", len(spans), tid)
	}
}

func TestDaemonServesAndRestartsWithState(t *testing.T) {
	state := t.TempDir()
	var buf1 syncBuffer
	addr, shutdown := startDaemon(t, &buf1, "-state", state)

	c, err := pleroma.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.Hosts()
	if len(hosts) == 0 {
		t.Fatal("daemon reported no hosts")
	}
	if err := c.Advertise("pub1", hosts[0], pleroma.NewFilter()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	sub := func(d pleroma.Delivery) { mu.Lock(); got++; mu.Unlock() }
	if err := c.Subscribe("sub1", hosts[1], pleroma.NewFilter().Range("price", 0, 511), sub); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("pub1", 100, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := got
	mu.Unlock()
	if n != 1 {
		t.Fatalf("subscriber got %d deliveries, want 1", n)
	}
	c.Close()

	shutdown() // graceful: drains, snapshots every partition

	if _, err := os.Stat(filepath.Join(state, "part-0.snap")); err != nil {
		t.Fatalf("shutdown left no snapshot: %v", err)
	}

	// Reboot from the same state directory: the control plane is rebuilt
	// from snapshot + journal before serving.
	var buf2 syncBuffer
	addr2, _ := startDaemon(t, &buf2, "-state", state)
	waitFor(t, &buf2, "recovered partition 0")

	c2, err := pleroma.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	d, err := c2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) == 0 {
		t.Fatal("recovered daemon served an empty state digest")
	}
	// The restored deployment still serves new work end to end.
	if err := c2.Advertise("pub2", hosts[0], pleroma.NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Publish("pub2", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
}
