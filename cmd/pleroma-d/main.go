// Command pleroma-d runs a PLEROMA deployment as a long-lived daemon:
// the emulated network, the partitioned controller fabric, and the TCP
// control surface that cmd/pleroma-pub and cmd/pleroma-sub (or any
// pleroma.Dial client) speak to.
//
// Usage:
//
//	pleroma-d -listen 127.0.0.1:7466
//	pleroma-d -listen 127.0.0.1:7466 -state /var/lib/pleroma -obs-addr :9090
//
// With -state, every partition's control-op journal is file-backed and a
// snapshot is written on shutdown; on the next boot the daemon rebuilds
// each partition's controller from snapshot plus journal suffix
// (restart-with-state). SIGINT/SIGTERM trigger a graceful drain:
// in-flight requests finish, queued deliveries flush, clients receive a
// goodbye frame, and state is snapshotted before exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pleroma"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-d:", err)
		os.Exit(1)
	}
}

// parseSchema parses "name:bits,name:bits" into schema attributes.
func parseSchema(s string) ([]pleroma.Attribute, error) {
	var attrs []pleroma.Attribute
	for _, part := range strings.Split(s, ",") {
		name, bitsStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("schema term %q: want name:bits", part)
		}
		bits, err := strconv.Atoi(bitsStr)
		if err != nil {
			return nil, fmt.Errorf("schema term %q: %w", part, err)
		}
		attrs = append(attrs, pleroma.Attribute{Name: name, Bits: bits})
	}
	return attrs, nil
}

func run(args []string, w io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("pleroma-d", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7466", "TCP address to serve the control surface on (use :0 for an ephemeral port)")
		state      = fs.String("state", "", "state directory for file-backed journals and shutdown snapshots (enables restart-with-state)")
		obsAddr    = fs.String("obs-addr", "", "serve the observability endpoint (/metrics, /healthz, /readyz, /traces, /debug/pprof) on this address")
		schema     = fs.String("schema", "price:10,volume:10", "event schema as name:bits,name:bits")
		pods       = fs.Int("pods", 4, "fat-tree pods")
		cores      = fs.Int("cores", 4, "fat-tree core switches")
		hosts      = fs.Int("hosts-per-edge", 2, "fat-tree hosts per edge switch")
		partitions = fs.Int("partitions", 1, "controller partitions")
		shards     = fs.Int("shards", 1, "parallel simulation shards")

		readTimeout  = fs.Duration("read-timeout", 0, "per-frame read deadline on client connections (0 = none)")
		writeTimeout = fs.Duration("write-timeout", 0, "per-flush write deadline on client connections (0 = server default)")
		noBatching   = fs.Bool("no-batching", false, "withhold the delivery-batching capability: every client sees the per-event v1 frame stream")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	attrs, err := parseSchema(*schema)
	if err != nil {
		return err
	}
	sch, err := pleroma.NewSchema(attrs...)
	if err != nil {
		return err
	}

	opts := []pleroma.Option{
		pleroma.WithFatTree(*pods, *cores, *hosts),
		pleroma.WithPartitions(*partitions),
		pleroma.WithShards(*shards),
		pleroma.WithObservability(0),
		pleroma.WithTransport(pleroma.TransportOptions{
			ReadTimeout:  *readTimeout,
			WriteTimeout: *writeTimeout,
			NoBatching:   *noBatching,
		}),
	}
	if *state != "" {
		if err := os.MkdirAll(*state, 0o755); err != nil {
			return err
		}
		opts = append(opts, pleroma.WithJournalDir(*state))
	}
	sys, err := pleroma.NewSystem(sch, opts...)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Restart-with-state: any partition with a prior snapshot or a
	// non-empty journal on disk is rebuilt before serving. The listener
	// opens only after recovery completes, so no client request can race
	// a partition's controller swap.
	if *state != "" {
		for _, p := range sys.Partitions() {
			snap, _ := os.ReadFile(pleroma.SnapshotPath(*state, p))
			fi, err := os.Stat(pleroma.JournalPath(*state, p))
			hasJournal := err == nil && fi.Size() > 0
			if len(snap) == 0 && !hasJournal {
				continue
			}
			rep, err := sys.Recover(p, snap)
			if err != nil {
				return fmt.Errorf("recover partition %d: %w", p, err)
			}
			fmt.Fprintf(w, "recovered partition %d: snapshot=%v replayed=%d epoch=%d\n",
				p, rep.FromSnapshot, rep.Replayed, rep.Epoch)
		}
	}

	addr, err := sys.StartListener(*listen)
	if err != nil {
		return err
	}
	// Scripts parse the first "listening on" line; keep it stable.
	fmt.Fprintf(w, "listening on %s\n", addr)
	fmt.Fprintf(w, "topology: %d hosts, %d switches, %d partitions, %d shards\n",
		len(sys.Hosts()), len(sys.Switches()), len(sys.Partitions()), sys.Shards())

	if *obsAddr != "" {
		srv, err := sys.ServeObservability(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "observability on http://%s\n", srv.Addr())
	}

	<-stop
	fmt.Fprintln(w, "draining")
	sys.StopListener() // drain before snapshotting: no request may race it
	if *state != "" {
		// PersistSnapshot makes each snapshot durable (fsynced file and
		// directory) before compacting the journal, so a crash mid-shutdown
		// never discards acknowledged ops.
		for _, p := range sys.Partitions() {
			if err := sys.PersistSnapshot(p, *state); err != nil {
				return fmt.Errorf("snapshot partition %d: %w", p, err)
			}
		}
		fmt.Fprintf(w, "snapshotted %d partitions to %s\n", len(sys.Partitions()), *state)
	}
	// sys.Close (deferred) stops the transport server gracefully: requests
	// in flight finish, queued deliveries flush, clients get a goodbye.
	return nil
}
