package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"pleroma"
)

// syncBuffer lets the test poll output written by the subscriber
// goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSubscribeReceivesDeliveries(t *testing.T) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "price", Bits: 10},
		pleroma.Attribute{Name: "volume", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch, pleroma.WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", sys.ListenAddr(),
			"-id", "s1",
			"-filter", "price:0-511",
			"-n", "1",
			"-for", "20s",
		}, &out)
	}()

	// Wait until the subscription is registered, then publish into it.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "subscribed") {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never registered; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	pub, err := pleroma.Dial(sys.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("p1", pub.Hosts()[0], pleroma.NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("p1", 100, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Run(); err != nil {
		t.Fatal(err)
	}

	if err := <-done; err != nil {
		t.Fatalf("pleroma-sub: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "received 1 deliveries") {
		t.Fatalf("output:\n%s", out.String())
	}
}
