// Command pleroma-sub is a subscriber process for a running pleroma-d
// daemon: it registers a content subscription and prints every event the
// network delivers to it, one line each, until the wait budget expires
// or the expected count arrives.
//
// Usage:
//
//	pleroma-sub -addr 127.0.0.1:7466 -id sub1 -filter "price:0-511"
//	pleroma-sub -addr 127.0.0.1:7466 -id sub1 -filter "price:0-511" -n 5 -for 30s
//
// The subscription persists on the daemon across disconnects: a restarted
// pleroma-sub with the same -id and -filter rebinds to it and resumes
// receiving.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pleroma"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-sub:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pleroma-sub", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:7466", "daemon address")
		id     = fs.String("id", "sub", "subscription id (reconnects must reuse it)")
		host   = fs.Int("host", 1, "index into the daemon's host list to subscribe on")
		filter = fs.String("filter", "", "subscribed region as attr:lo-hi,... (empty = everything)")
		n      = fs.Int("n", 0, "exit after this many deliveries (0 = wait out -for)")
		wait   = fs.Duration("for", 10*time.Second, "how long to wait for deliveries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := pleroma.ParseFilter(*filter)
	if err != nil {
		return err
	}
	c, err := pleroma.Dial(*addr, pleroma.WithDialID("pleroma-sub/"+*id))
	if err != nil {
		return err
	}
	defer c.Close()

	hosts := c.Hosts()
	if *host < 0 || *host >= len(hosts) {
		return fmt.Errorf("-host %d out of range (daemon has %d hosts)", *host, len(hosts))
	}

	type line struct{ text string }
	deliveries := make(chan line, 1024)
	handler := func(d pleroma.Delivery) {
		fp := ""
		if d.FalsePositive {
			fp = " (false positive)"
		}
		select {
		case deliveries <- line{fmt.Sprintf("t=%v latency=%v event=%v%s",
			d.At.Round(time.Microsecond), d.Latency.Round(time.Microsecond), d.Event.Values, fp)}:
		default: // never block the network reader
		}
	}
	if err := c.Subscribe(*id, hosts[*host], f, handler); err != nil {
		return err
	}
	fmt.Fprintf(w, "subscribed %q on host %d, waiting %v\n", *id, hosts[*host], *wait)

	deadline := time.NewTimer(*wait)
	defer deadline.Stop()
	got := 0
	for {
		select {
		case l := <-deliveries:
			got++
			fmt.Fprintf(w, "[%d] %s\n", got, l.text)
			if *n > 0 && got >= *n {
				fmt.Fprintf(w, "received %d deliveries\n", got)
				return nil
			}
		case <-deadline.C:
			fmt.Fprintf(w, "received %d deliveries\n", got)
			return nil
		}
	}
}
