package main

import "testing"

func TestRunTopologies(t *testing.T) {
	cases := [][]string{
		{"-topology", "testbed"},
		{"-topology", "fattree20", "-partitions", "3"},
		{"-topology", "ring20", "-partitions", "4", "-advs", "2", "-subs", "5"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-topology", "nope"},
		{"-topology", "testbed", "-partitions", "2"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) expected error", args)
		}
	}
}

func TestRunDot(t *testing.T) {
	if err := run([]string{"-topology", "ring20", "-partitions", "3", "-dot"}); err != nil {
		t.Fatal(err)
	}
}
