// Command pleroma-topo builds a PLEROMA deployment over one of the
// evaluation topologies, drives a small random workload through the
// controllers, and dumps the resulting state: partitions and border
// ports, dissemination trees, and per-switch flow tables. It is the
// debugging companion to cmd/dzcalc.
//
// Usage:
//
//	pleroma-topo -topology ring20 -partitions 4 -advs 2 -subs 6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pleroma/internal/interdomain"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pleroma-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pleroma-topo", flag.ContinueOnError)
	var (
		topoName   = fs.String("topology", "testbed", "testbed | fattree20 | ring20")
		partitions = fs.Int("partitions", 1, "number of controller partitions")
		advs       = fs.Int("advs", 2, "number of advertisements")
		subs       = fs.Int("subs", 4, "number of subscriptions")
		seed       = fs.Int64("seed", 42, "workload seed")
		maxDzLen   = fs.Int("maxlen", 12, "maximum dz length")
		dot        = fs.Bool("dot", false, "emit the topology as Graphviz DOT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildTopology(*topoName, *partitions)
	if err != nil {
		return err
	}
	dp := netem.New(g, sim.NewEngine())
	fab, err := interdomain.NewFabric(g, dp)
	if err != nil {
		return err
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		return err
	}
	gen, err := workload.New(sch, workload.Zipfian, *seed)
	if err != nil {
		return err
	}
	hosts := g.Hosts()
	for i := 0; i < *advs; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), *maxDzLen, 8)
		if err != nil {
			return err
		}
		host := hosts[(i*len(hosts)/max(*advs, 1))%len(hosts)]
		if err := fab.Advertise(fmt.Sprintf("p%d", i), host, set); err != nil {
			return err
		}
	}
	for i := 0; i < *subs; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), *maxDzLen, 8)
		if err != nil {
			return err
		}
		if err := fab.Subscribe(fmt.Sprintf("s%d", i), hosts[(i*3+1)%len(hosts)], set); err != nil {
			return err
		}
	}

	if *dot {
		return dumpDot(os.Stdout, g)
	}
	dump(g, dp, fab)
	return nil
}

// dotPalette colours partitions in DOT output.
var dotPalette = []string{
	"lightblue", "lightgreen", "lightsalmon", "lightyellow",
	"plum", "lightcyan", "wheat", "mistyrose", "honeydew", "lavender",
}

// dumpDot renders the topology as a Graphviz graph: switches as circles
// coloured by partition, hosts as boxes, failed links dashed.
func dumpDot(w io.Writer, g *topo.Graph) error {
	if _, err := fmt.Fprintln(w, "graph pleroma {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  layout=neato; overlap=false;")
	for _, n := range g.Nodes() {
		color := dotPalette[n.Partition%len(dotPalette)]
		shape := "circle"
		if n.Kind == topo.KindHost {
			shape = "box"
		}
		fmt.Fprintf(w, "  n%d [label=%q shape=%s style=filled fillcolor=%s];\n",
			n.ID, n.Name, shape, color)
	}
	for _, l := range g.Links() {
		style := "solid"
		if l.Down {
			style = "dashed"
		}
		fmt.Fprintf(w, "  n%d -- n%d [style=%s];\n", l.A, l.B, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func buildTopology(name string, partitions int) (*topo.Graph, error) {
	switch name {
	case "testbed":
		if partitions > 1 {
			return nil, fmt.Errorf("testbed supports a single partition")
		}
		return topo.TestbedFatTree(topo.DefaultLinkParams)
	case "fattree20":
		g, err := topo.FatTree(4, 4, 1, topo.DefaultLinkParams)
		if err != nil {
			return nil, err
		}
		if partitions > 1 {
			if err := topo.PartitionFatTree(g, partitions); err != nil {
				return nil, err
			}
		}
		return g, nil
	case "ring20":
		g, err := topo.Ring(20, topo.DefaultLinkParams)
		if err != nil {
			return nil, err
		}
		if err := topo.PartitionRing(g, partitions); err != nil {
			return nil, err
		}
		return g, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func dump(g *topo.Graph, dp *netem.DataPlane, fab *interdomain.Fabric) {
	fmt.Printf("topology: %d switches, %d hosts, %d links\n",
		len(g.Switches()), len(g.Hosts()), len(g.Links()))

	for _, p := range fab.Partitions() {
		fmt.Printf("\n== partition %d ==\n", p)
		fmt.Printf("switches:")
		for _, sw := range g.SwitchesInPartition(p) {
			n, _ := g.Node(sw)
			fmt.Printf(" %s", n.Name)
		}
		fmt.Println()
		for _, nb := range fab.Neighbors(p) {
			for _, bp := range fab.BorderPorts(p, nb) {
				local, _ := g.Node(bp.LocalSwitch)
				remote, _ := g.Node(bp.RemoteSwitch)
				fmt.Printf("border to partition %d: %s port %d ⇄ %s port %d\n",
					nb, local.Name, bp.LocalPort, remote.Name, bp.RemotePort)
			}
		}
		ctl, err := fab.Controller(p)
		if err != nil {
			continue
		}
		for _, tr := range ctl.Trees() {
			root, _ := g.Node(tr.Root)
			fmt.Printf("tree %d: DZ=%s root=%s pubs=%v subs=%v\n",
				tr.ID, tr.DZ, root.Name, tr.Publishers, tr.Subscribers)
		}
		if stored := ctl.StoredSubscriptions(); len(stored) > 0 {
			fmt.Printf("stored subscriptions: %v\n", stored)
		}
	}

	fmt.Println("\n== flow tables ==")
	for _, sw := range g.Switches() {
		flows, err := dp.Flows(sw)
		if err != nil || len(flows) == 0 {
			continue
		}
		n, _ := g.Node(sw)
		fmt.Printf("%s:\n", n.Name)
		for _, fl := range flows {
			fmt.Printf("  %s   match %s\n", fl.String(), fl.Match)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
