package pleroma

import (
	"errors"
	"testing"
	"time"

	"pleroma/internal/topo"
)

func newSys(t *testing.T, opts ...Option) *System {
	t.Helper()
	sch, err := NewSchema(
		Attribute{Name: "price", Bits: 10},
		Attribute{Name: "volume", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemQuickstartFlow(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	if len(hosts) != 8 {
		t.Fatalf("hosts=%d", len(hosts))
	}

	pub, err := sys.NewPublisher("ticker", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}

	var got []Delivery
	if err := sys.Subscribe("cheap", hosts[7],
		NewFilter().Range("price", 0, 99),
		func(d Delivery) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}

	if err := pub.Publish(42, 1000); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(500, 1000); err != nil {
		t.Fatal(err)
	}
	sys.Run()

	if len(got) != 1 {
		t.Fatalf("deliveries=%d, want 1", len(got))
	}
	d := got[0]
	if d.SubscriptionID != "cheap" {
		t.Errorf("sub id=%q", d.SubscriptionID)
	}
	if d.Event.Values[0] != 42 {
		t.Errorf("event=%v", d.Event.Values)
	}
	if d.Latency <= 0 || d.At <= 0 {
		t.Errorf("timing: %+v", d)
	}
	if d.FalsePositive {
		t.Error("exact match marked as false positive")
	}

	st := sys.Stats()
	if st.Partitions != 1 || st.FlowMods == 0 || st.LinkPackets == 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestPublishWithoutAdvertise(t *testing.T) {
	sys := newSys(t)
	pub, err := sys.NewPublisher("p", sys.Hosts()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1, 2); !errors.Is(err, ErrNotAdvertised) {
		t.Errorf("err=%v, want ErrNotAdvertised", err)
	}
	if err := pub.Unadvertise(); !errors.Is(err, ErrNotAdvertised) {
		t.Errorf("unadvertise err=%v", err)
	}
}

// TestSameHostDelivery pins the access-switch hairpin: a subscriber on
// the publisher's own host receives matching events (via a flow whose out
// port is the ingress port), while a colocated non-matching subscription
// stays silent.
func TestSameHostDelivery(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter().Range("price", 0, 511)); err != nil {
		t.Fatal(err)
	}
	var same, other, miss int
	if err := sys.Subscribe("same", hosts[0], NewFilter().Range("price", 0, 255),
		func(Delivery) { same++ }); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("other", hosts[7], NewFilter().Range("price", 0, 255),
		func(Delivery) { other++ }); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("miss", hosts[0], NewFilter().Range("price", 600, 700),
		func(Delivery) { miss++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(10, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if same != 1 || other != 1 {
		t.Errorf("same-host=%d other-host=%d, want 1/1", same, other)
	}
	if miss != 0 {
		t.Errorf("non-matching colocated subscription received %d events", miss)
	}
	if err := sys.VerifyTables(); err != nil {
		t.Errorf("tables inconsistent: %v", err)
	}
	// Hairpin flows tear down like any other: unsubscribing the colocated
	// subscriber stops its delivery without disturbing the remote one.
	if err := sys.Unsubscribe("same"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(11, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if same != 1 || other != 2 {
		t.Errorf("after unsubscribe: same-host=%d other-host=%d, want 1/2", same, other)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[3], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Fatalf("count=%d", count)
	}
	if err := sys.Unsubscribe("s"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(2, 2); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Errorf("delivery after unsubscribe: count=%d", count)
	}
	if err := sys.Unsubscribe("s"); !errors.Is(err, ErrUnknownSubscription) {
		t.Errorf("err=%v", err)
	}
}

func TestUnadvertiseStopsDelivery(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[2], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Unadvertise(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1, 1); !errors.Is(err, ErrNotAdvertised) {
		t.Errorf("publish after unadvertise: %v", err)
	}
	sys.Run()
	if count != 0 {
		t.Errorf("count=%d", count)
	}
}

func TestMultiPartitionRing(t *testing.T) {
	sys := newSys(t, WithTopology(TopologyRing20), WithPartitions(4))
	hosts := sys.Hosts()
	if len(hosts) != 20 {
		t.Fatalf("hosts=%d", len(hosts))
	}
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	// A subscriber far around the ring (different partition).
	if err := sys.Subscribe("s", hosts[10], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(7, 7); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Errorf("cross-partition delivery count=%d", count)
	}
	st := sys.Stats()
	if st.Partitions != 4 {
		t.Errorf("partitions=%d", st.Partitions)
	}
	if st.ControlMessages == 0 {
		t.Error("multi-partition run must exchange control messages")
	}
}

func TestFatTree20Topology(t *testing.T) {
	sys := newSys(t, WithTopology(TopologyFatTree20), WithPartitions(2))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[len(hosts)-1], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Errorf("delivery count=%d", count)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("nil schema must fail")
	}
	sch, _ := NewSchema(Attribute{Name: "a", Bits: 10})
	if _, err := NewSystem(sch, WithTopology(Topology(99))); err == nil {
		t.Error("unknown topology must fail")
	}
	if _, err := NewSystem(sch, WithPartitions(3)); err == nil {
		t.Error("testbed with >1 partitions must fail")
	}
	if _, err := NewSystem(sch, WithMaxDzLen(0)); err == nil {
		t.Error("zero maxDzLen must fail")
	}

	sys := newSys(t)
	if _, err := sys.NewPublisher("p", topo.NodeID(999)); err == nil {
		t.Error("bad host must fail")
	}
	if _, err := sys.NewPublisher("p", sys.Hosts()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewPublisher("p", sys.Hosts()[1]); err == nil {
		t.Error("duplicate publisher must fail")
	}
	if err := sys.Subscribe("s", sys.Hosts()[0], NewFilter(), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", sys.Hosts()[0], NewFilter(), nil); err == nil {
		t.Error("duplicate subscription must fail")
	}
	if err := sys.Subscribe("bad", sys.Hosts()[0], NewFilter().Range("ghost", 0, 1), nil); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestHostCapacityOption(t *testing.T) {
	sys := newSys(t, WithHostCapacity(100))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[1], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	// A burst far above capacity must drop events.
	for i := 0; i < 2000; i++ {
		if err := pub.Publish(uint32(i%1024), 1); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	if count >= 2000 {
		t.Errorf("capacity-limited host delivered everything (%d)", count)
	}
	if count == 0 {
		t.Error("host must deliver something")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	sys := newSys(t)
	// LLDP border discovery at construction consumes a little simulated
	// time; the clock must still be well below a millisecond.
	start := sys.Now()
	if start > time.Millisecond {
		t.Fatalf("clock after discovery=%v, want <1ms", start)
	}
	got := sys.RunFor(time.Second)
	if got != start+time.Second || sys.Now() != start+time.Second {
		t.Errorf("RunFor=%v Now=%v (start %v)", got, sys.Now(), start)
	}
}

func TestDimensionSelection(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SelectDimensions(0.9); err == nil {
		t.Error("selection without events must fail")
	}
	// Subscriptions selective on price only; events vary on price,
	// constant on volume.
	for i := 0; i < 5; i++ {
		if err := sys.Subscribe(
			itoa(i), hosts[1+i%7],
			NewFilter().Range("price", uint32(i*100), uint32(i*100+50)),
			nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := pub.Publish(uint32((i*37)%1024), 500); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	sel, err := sys.SelectDimensions(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Ranking) != 2 || sel.K < 1 {
		t.Fatalf("selection=%+v", sel)
	}
	if sel.Ranking[0] != 0 {
		t.Errorf("price (dim 0) must rank first: %+v", sel)
	}
}

func itoa(i int) string { return string(rune('a' + i)) }

func TestOverloadReport(t *testing.T) {
	sys := newSys(t, WithHostCapacity(500))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[1], NewFilter(), nil); err != nil {
		t.Fatal(err)
	}
	// Before any traffic: nothing overloaded.
	if rep := sys.OverloadReport(); rep.Overloaded() {
		t.Errorf("fresh system overloaded: %+v", rep)
	}
	for i := 0; i < 3000; i++ {
		if err := pub.Publish(uint32(i%1024), 0); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	rep := sys.OverloadReport()
	if !rep.Overloaded() {
		t.Fatal("burst far above host capacity must overload")
	}
	if len(rep.OverloadedHosts) != 1 || rep.OverloadedHosts[0].Host != hosts[1] {
		t.Errorf("overloaded hosts=%+v", rep.OverloadedHosts)
	}
	if dr := rep.OverloadedHosts[0].DropRate(); dr <= 0 || dr >= 1 {
		t.Errorf("drop rate=%v", dr)
	}
	if len(rep.HottestLinks) == 0 {
		t.Error("hottest links must be populated")
	}
	for i := 1; i < len(rep.HottestLinks); i++ {
		if rep.HottestLinks[i].Packets > rep.HottestLinks[i-1].Packets {
			t.Error("hottest links must be sorted descending")
		}
	}
}

func TestOverloadReportLossyLinks(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "a", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Starve the links: tiny bandwidth and a shallow queue.
	params := topo.LinkParams{
		Latency:      time.Millisecond,
		BandwidthBps: 64 * 8 * 20,
		QueuePackets: 3,
	}
	sys, err := NewSystem(sch, WithLinkParams(params))
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[7], NewFilter(), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := pub.Publish(uint32(i % 1024)); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	rep := sys.OverloadReport()
	if len(rep.LossyLinks) == 0 {
		t.Fatal("starved links must tail-drop")
	}
	if !rep.Overloaded() {
		t.Error("lossy links must flag overload")
	}
}

func TestInBandSignallingOption(t *testing.T) {
	sys := newSys(t, WithInBandSignalling(3*time.Millisecond))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[7], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	// The request is still in flight: publishing now must NOT deliver
	// (the flows are not installed yet).
	if err := pub.Publish(1, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 0 {
		t.Fatalf("event before activation delivered: count=%d", count)
	}
	// After the control plane settles, delivery works.
	if err := pub.Publish(2, 2); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Errorf("count=%d after activation", count)
	}
}

func TestResubscribe(t *testing.T) {
	sys := newSys(t)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	var got []uint32
	if err := sys.Subscribe("s", hosts[6],
		NewFilter().Range("price", 0, 99),
		func(d Delivery) { got = append(got, d.Event.Values[0]) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(50, 1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	// Move the threshold window: the handler stays attached.
	if err := sys.Resubscribe("s", NewFilter().Range("price", 500, 599)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(50, 1); err != nil { // old window: filtered out
		t.Fatal(err)
	}
	if err := pub.Publish(550, 1); err != nil { // new window: delivered
		t.Fatal(err)
	}
	sys.Run()
	if len(got) != 2 || got[0] != 50 || got[1] != 550 {
		t.Errorf("got=%v, want [50 550]", got)
	}
	if err := sys.Resubscribe("ghost", NewFilter()); err == nil {
		t.Error("unknown id must fail")
	}
	if err := sys.Resubscribe("s", NewFilter().Range("ghost", 0, 1)); err == nil {
		t.Error("bad filter must fail")
	}
}

func TestStatsFPR(t *testing.T) {
	// A tiny dz budget forces truncation false positives; the Stats FPR
	// must reflect them.
	sys := newSys(t, WithMaxDzLen(2), WithMaxSubspaces(2))
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[4],
		NewFilter().Range("price", 100, 120), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := pub.Publish(uint32((i*5)%1024), 1); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	st := sys.Stats()
	if st.Deliveries == 0 {
		t.Fatal("no deliveries")
	}
	if st.FalsePositives == 0 {
		t.Fatal("coarse dz budget must produce false positives")
	}
	if fpr := st.FPRPercent(); fpr <= 0 || fpr > 100 {
		t.Errorf("FPR=%v", fpr)
	}
	if (Stats{}).FPRPercent() != 0 {
		t.Error("empty stats FPR must be 0")
	}
}
