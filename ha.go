package pleroma

import (
	"fmt"

	"pleroma/internal/core"
	"pleroma/internal/interdomain"
)

// WithJournal enables controller high availability: every partition
// controller appends its control ops (advertise, subscribe, and their
// inverses, plus reconfigurations) to an in-memory journal, and the
// System gains a Snapshot/Restore/Failover surface. Snapshotting a
// partition compacts its journal; Failover builds a warm standby from
// the last snapshot plus the journal suffix, promotes it under a fresh
// epoch, and anti-entropy-resyncs the inherited switches.
func WithJournal() Option { return func(c *config) { c.journal = true } }

// FailoverReport describes one warm-standby takeover.
type FailoverReport = interdomain.FailoverReport

// SnapshotDigest returns the SHA-256 digest a snapshot carries in its
// trailer, after validating the header. Two snapshots of equivalent
// controller state are byte-identical, so digests are directly
// comparable.
func SnapshotDigest(snap []byte) ([32]byte, error) {
	return core.SnapshotDigest(snap)
}

// Partitions returns the managed partition ids, ascending.
func (s *System) Partitions() []int { return s.fab.Partitions() }

// Snapshot serialises the partition's controller state to a
// deterministic, digest-trailed byte stream and compacts the
// partition's journal up to the snapshot's sequence number. Requires
// WithJournal.
func (s *System) Snapshot(partition int) ([]byte, error) {
	if !s.cfg.journal {
		return nil, fmt.Errorf("pleroma: Snapshot requires WithJournal")
	}
	return s.fab.SnapshotPartition(partition)
}

// Restore replaces the partition's controller with one reconstructed
// from the snapshot, then resynchronises its switches against the
// restored desired state. Requires WithJournal.
func (s *System) Restore(partition int, snap []byte) error {
	if !s.cfg.journal {
		return fmt.Errorf("pleroma: Restore requires WithJournal")
	}
	return s.fab.RestorePartition(partition, snap)
}

// Failover simulates the loss of the partition's active controller: a
// warm standby replays the last snapshot plus the journal suffix,
// takes over under a bumped epoch, and anti-entropy-resyncs the
// inherited switches so any flows the dead controller installed after
// its last journal flush are reconciled. Requires WithJournal.
func (s *System) Failover(partition int) (FailoverReport, error) {
	if !s.cfg.journal {
		return FailoverReport{}, fmt.Errorf("pleroma: Failover requires WithJournal")
	}
	return s.fab.Failover(partition)
}
