package pleroma

import (
	"reflect"
	"sync"
	"testing"
)

// TestControllerFailoverScenario kills and replaces a partition's
// controller mid-stream on both simulation engines: delivery must
// continue unchanged through the promoted standby.
func TestControllerFailoverScenario(t *testing.T) {
	engineVariants(t, controllerFailoverScenario)
}

func controllerFailoverScenario(t *testing.T, opts ...Option) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{
		WithTopology(TopologyRing20), WithPartitions(4), WithJournal(),
	}, opts...)
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	// hosts[6] sits in partition 1 (5 hosts per partition), so the stream
	// crosses the failed-over transit controller's partition border.
	if err := sys.Subscribe("s", hosts[6], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Fatalf("baseline: %d", count)
	}

	// Fail over every partition in turn, publishing through each takeover.
	for i, p := range sys.Partitions() {
		if i%2 == 0 {
			if _, err := sys.Snapshot(p); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sys.Failover(p)
		if err != nil {
			t.Fatalf("failover partition %d: %v", p, err)
		}
		if rep.Epoch != 1 {
			t.Errorf("partition %d: epoch=%d, want 1", p, rep.Epoch)
		}
		if err := pub.Publish(uint32(10 + i)); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		if count != 2+i {
			t.Fatalf("after failover of partition %d: deliveries=%d, want %d", p, count, 2+i)
		}
	}

	// Post-failover churn still works: the promoted controllers accept new
	// subscriptions and route to them.
	extra := 0
	if err := sys.Subscribe("s2", hosts[12], NewFilter(), func(Delivery) { extra++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(99); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if extra != 1 {
		t.Errorf("post-failover subscription received %d, want 1", extra)
	}
}

// TestHAOptionRequired pins the gating: the HA surface is only available
// with WithJournal.
func TestHAOptionRequired(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if _, err := sys.Snapshot(0); err == nil {
		t.Error("Snapshot without WithJournal must fail")
	}
	if err := sys.Restore(0, nil); err == nil {
		t.Error("Restore without WithJournal must fail")
	}
	if _, err := sys.Failover(0); err == nil {
		t.Error("Failover without WithJournal must fail")
	}
}

// TestSnapshotRestoreRoundTripDigest is the facade-level acceptance
// check: snapshot → restore → snapshot reproduces a byte-identical
// digest.
func TestSnapshotRestoreRoundTripDigest(t *testing.T) {
	const seed = 555111
	soakDrive(t, []Option{WithJournal()}, seed, func(s *System, round int) {
		if round != 6 {
			return
		}
		p := s.Partitions()[0]
		snap, err := s.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := SnapshotDigest(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(p, snap); err != nil {
			t.Fatal(err)
		}
		snap2, err := s.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := SnapshotDigest(snap2)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatal("snapshot → restore → snapshot digest changed")
		}
	})
}

// TestSoakFailoverConvergence is the acceptance check for controller HA:
// the same seeded churn workload runs once undisturbed and once with the
// active controller of a rotating partition killed and failed over every
// round (snapshotting only every third round, so most takeovers replay a
// journal suffix). The delivery multisets must match round for round —
// controller crashes are invisible to subscribers.
func TestSoakFailoverConvergence(t *testing.T) {
	const seed = 777001
	opts := []Option{WithTopology(TopologyRing20), WithPartitions(4), WithJournal()}
	baseline := soakDrive(t, opts, seed, nil)

	epochs := make(map[int]uint32)
	failed := soakDrive(t, opts, seed, func(s *System, round int) {
		parts := s.Partitions()
		p := parts[round%len(parts)]
		if round%3 == 0 {
			if _, err := s.Snapshot(p); err != nil {
				t.Fatalf("round %d: snapshot partition %d: %v", round, p, err)
			}
		}
		rep, err := s.Failover(p)
		if err != nil {
			t.Fatalf("round %d: failover partition %d: %v", round, p, err)
		}
		if want := epochs[p] + 1; rep.Epoch != want {
			t.Errorf("round %d: partition %d epoch=%d, want %d", round, p, rep.Epoch, want)
		}
		epochs[p] = rep.Epoch
		if err := s.VerifyTables(); err != nil {
			t.Fatalf("round %d: tables diverged after failover: %v", round, err)
		}
	})

	if len(baseline) != len(failed) {
		t.Fatalf("round counts differ: baseline %d, failover %d", len(baseline), len(failed))
	}
	for round := range baseline {
		if !reflect.DeepEqual(baseline[round], failed[round]) {
			t.Errorf("round %d deliveries diverge under failover:\nbaseline: %v\nfailover: %v",
				round, baseline[round], failed[round])
		}
	}
}

// TestSystemCloseIdempotent pins the Close contract: double Close, Close
// racing Close, and Close racing in-flight publishes must all be safe.
// Run with -race.
func TestSystemCloseIdempotent(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := sys.Subscribe("s", hosts[7], NewFilter(), func(Delivery) { got++ }); err != nil {
		t.Fatal(err)
	}
	// Exercise the workers so Close has started goroutines to reap.
	for i := 0; i < 3; i++ {
		if err := pub.Publish(uint32(i)); err != nil {
			t.Fatal(err)
		}
		sys.Run()
	}
	if got != 3 {
		t.Fatalf("deliveries=%d, want 3", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.Close()
		}()
	}
	wg.Wait()
	sys.Close() // and once more, sequentially

	// A never-started sharded system (workers lazily spawned) closes too.
	sys2, err := NewSystem(sch, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	sys2.Close()
	sys2.Close()

	// Single-engine systems have no coordinator; Close is a no-op.
	sys3, err := NewSystem(sch)
	if err != nil {
		t.Fatal(err)
	}
	sys3.Close()
	sys3.Close()
}
