package pleroma

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"pleroma/internal/obs"
)

// This file is the public face of the runtime observability layer
// (internal/obs): a metrics registry populated by every subsystem
// (controllers, data plane, fault layer, interdomain fabric), a bounded
// trace of control-plane operations, and the operational HTTP endpoint
// serving /metrics, /healthz, /readyz, /traces and /debug/pprof.
// Observability is off by default and the publish/delivery hot path then
// pays only nil checks (see BenchmarkSystemPublishDeliver in
// benchmarks/obs.txt).

// Re-exported observability types.
type (
	// MetricsSnapshot is a point-in-time copy of every registered metric
	// (families sorted by name, samples by label).
	MetricsSnapshot = obs.Snapshot
	// MetricFamily is one named metric with all its label samples.
	MetricFamily = obs.Family
	// TraceSpan is one recorded control-plane operation with its events.
	TraceSpan = obs.Span
	// ObsServer is a running observability HTTP endpoint.
	ObsServer = obs.Server
	// DeliverySample is one end-to-end delivery observation (see the
	// slowest-events ring of DeliveryLatencyReport).
	DeliverySample = obs.DeliverySample
	// HistogramSnapshot is a point-in-time copy of one histogram.
	HistogramSnapshot = obs.HistSnapshot
)

// WithObservability enables the observability layer: a metrics registry
// threaded through all subsystems, and a control-plane tracer keeping the
// most recent traceCapacity operation spans (0 selects the default of
// 256). Disabled systems skip all of it and keep the data path free of
// instrumentation.
func WithObservability(traceCapacity int) Option {
	return func(c *config) {
		c.obsEnabled = true
		c.obsTraceCap = traceCapacity
	}
}

// WithTraceLog additionally streams every completed control-plane span to
// l as a structured log record. Implies nothing on its own: it takes
// effect only together with WithObservability.
func WithTraceLog(l *slog.Logger) Option {
	return func(c *config) { c.obsTraceSink = l }
}

// defaultTraceCapacity is the ring size used when WithObservability is
// given a non-positive capacity.
const defaultTraceCapacity = 256

// initObservability builds the registry and tracer before the fabric is
// created (the fabric threads them into every partition controller).
func (c *config) initObservability() (*obs.Registry, *obs.Tracer) {
	if !c.obsEnabled {
		return nil, nil
	}
	cap := c.obsTraceCap
	if cap <= 0 {
		cap = defaultTraceCapacity
	}
	tracer := obs.NewTracer(cap)
	if c.obsTraceSink != nil {
		tracer.SetSink(c.obsTraceSink)
	}
	return obs.NewRegistry(), tracer
}

// instrumentDispatch creates the facade-level delivery instruments; the
// dispatch hot path increments them nil-safely.
func (s *System) instrumentDispatch() {
	if s.reg == nil {
		return
	}
	s.obsDeliveries = s.reg.Counter(obs.MDeliveries, "Events handed to subscription handlers.")
	s.obsFalsePositives = s.reg.Counter(obs.MFalsePositives, "Deliveries not matching the receiving subscription exactly (dz truncation, Section 6.4).")
	s.obsDeliveryLatency = s.reg.Histogram(obs.MDeliveryLatency, "End-to-end publish-to-delivery latency (simulated time).", obs.DefaultLatencyBuckets...)
	s.lat = obs.NewDeliveryLatency(0)
	s.lat.Attach(s.reg)
}

// Metrics returns a snapshot of every registered metric. The zero
// snapshot without WithObservability.
func (s *System) Metrics() MetricsSnapshot {
	if s.reg == nil {
		return MetricsSnapshot{}
	}
	return s.reg.Snapshot()
}

// Traces returns the recorded control-plane spans, oldest first; nil
// without WithObservability.
func (s *System) Traces() []*TraceSpan {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Spans()
}

// TraceByID returns every recorded span of one distributed trace, oldest
// first — a publish and all the deliveries it caused, across the process
// boundary when the publish came over the wire. Nil without
// WithObservability or for an unknown id.
func (s *System) TraceByID(id uint64) []*TraceSpan {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.SpansByTrace(id)
}

// DeliveryLatencyReport distills the delivery-latency instrument family:
// the headline end-to-end simulated-latency histogram, its estimated
// percentiles, the per-tree and per-partition breakdowns, hop counts,
// wall-clock latency for stamped publishes, and the retained slowest
// deliveries. The zero report without WithObservability.
type DeliveryLatencyReport struct {
	// Count and Sum aggregate the end-to-end simulated latency histogram.
	Count uint64
	Sum   time.Duration
	// P50/P95/P99 are interpolated from the histogram buckets.
	P50, P95, P99 time.Duration
	// ByTree and ByPartition break the same latency down by dissemination
	// tree and by publisher partition (label → snapshot).
	ByTree      map[string]*HistogramSnapshot
	ByPartition map[string]*HistogramSnapshot
	// Hops counts switch hops per delivered event (count-unit buckets).
	Hops *HistogramSnapshot
	// Wall is the wall-clock publish→delivery histogram for stamped
	// publishes; across machines it includes clock skew.
	Wall *HistogramSnapshot
	// Slowest holds the retained tail samples, slowest first.
	Slowest []DeliverySample
}

// DeliveryLatency reports the current delivery-latency accounting.
func (s *System) DeliveryLatency() DeliveryLatencyReport {
	var r DeliveryLatencyReport
	if snap := s.obsDeliveryLatency.Snapshot(); snap != nil {
		r.Count, r.Sum = snap.Count, snap.Sum
		r.P50 = snap.Quantile(0.50)
		r.P95 = snap.Quantile(0.95)
		r.P99 = snap.Quantile(0.99)
	}
	r.ByTree = s.lat.TreeSnapshots()
	r.ByPartition = s.lat.PartitionSnapshots()
	r.Hops = s.lat.Hops().Snapshot()
	r.Wall = s.lat.Wall().Snapshot()
	r.Slowest = s.lat.Slowest()
	return r
}

// systemHealth adapts the deployment's southbound health to the
// operational endpoint: /healthz degrades while any switch is
// quarantined.
type systemHealth struct{ s *System }

func (h systemHealth) DegradedSwitches() []string {
	ds := h.s.fab.DegradedSwitches()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = strconv.Itoa(int(d.Sw))
	}
	return out
}

func (h systemHealth) Ready() bool { return true }

// ObsHandler returns the operational HTTP handler (/metrics, /healthz,
// /readyz, /traces, /debug/pprof/*). It works — with empty metrics and
// traces — even without WithObservability, so health stays inspectable.
func (s *System) ObsHandler() http.Handler {
	return obs.Handler(s.reg, s.tracer, systemHealth{s: s})
}

// ServeObservability binds the operational endpoint on addr (e.g.
// ":9090", or "127.0.0.1:0" for an ephemeral port) and serves it in the
// background; close the returned server when done. The endpoint only
// reads atomics and mutex-guarded rings, so it is safe alongside the
// single goroutine driving the System.
func (s *System) ServeObservability(addr string) (*ObsServer, error) {
	return obs.Serve(addr, s.reg, s.tracer, systemHealth{s: s})
}
